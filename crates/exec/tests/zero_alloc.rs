//! Dynamic zero-allocation witness for the replication hot path.
//!
//! The audit crate's R3-alloc rule statically forbids allocation
//! constructors in the hot modules; this test proves the property at
//! runtime. A counting `#[global_allocator]` wraps the system allocator,
//! and after a short warmup the pooled [`Replicator`] must run every
//! spec scheme × fault-process combination without a single heap
//! allocation.
//!
//! Lives behind the `alloc-count` feature (see `[[test]]` in Cargo.toml)
//! so the wrapper allocator never taxes ordinary test runs:
//!
//! ```text
//! cargo test -p eacp-exec --features alloc-count --test zero_alloc --release
//! ```
//!
//! This is an integration test rather than a unit test on purpose: the
//! library forbids `unsafe_code`, while `GlobalAlloc` is an unsafe trait;
//! an integration test is its own crate root, so the library's guarantee
//! stays intact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use eacp_exec::{ExecutiveJob, Job, Replicate, Workload};
use eacp_sim::NoopObserver;
use eacp_spec::{
    ExecutiveMcSpec, ExecutiveSpec, ExperimentSpec, FaultSpec, McSpec, PolicyAssignment,
    PolicySpec, TaskSetSpec,
};

/// Counts every allocation and reallocation. Deallocations are free:
/// a hot loop that frees without allocating cannot grow the count.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LAST_SIZE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        LAST_SIZE.store(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        LAST_SIZE.store(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Mirror of the golden-identity matrix: one representative of every
/// stochastic fault process plus the deterministic schedule variants.
fn fault_specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("poisson", FaultSpec::Poisson { lambda: 2e-3 }),
        (
            "weibull",
            FaultSpec::Weibull {
                shape: 0.7,
                scale: 700.0,
            },
        ),
        (
            "burst",
            FaultSpec::Burst {
                quiet_rate: 1e-4,
                burst_rate: 2e-2,
                mean_quiet_dwell: 5_000.0,
                mean_burst_dwell: 500.0,
            },
        ),
        (
            "phased",
            FaultSpec::Phased {
                phases: vec![(4_000.0, 5e-4), (1_000.0, 5e-3)],
                repeat: true,
            },
        ),
    ]
}

fn witness_spec(tag: &str, name: &str, faults: FaultSpec) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = format!("zero-alloc-{tag}-{name}");
    spec.policy = PolicySpec::from_tag(tag, 1.4e-3, 5, 0).expect("known scheme tag");
    spec.faults = faults;
    spec.mc = McSpec {
        replications: 64,
        seed: 77,
        threads: 1,
    };
    spec
}

const WARMUP: u64 = 16;
const MEASURED: u64 = 32;

/// Harness-free entry point (`harness = false`): libtest runs each test
/// on a spawned thread while its main thread keeps allocating, which
/// would race the counter. Here the whole process is the measurement.
fn main() {
    replication_loop_never_allocates_after_warmup();
    executive_horizons_never_allocate_after_warmup();
    batched_sampling_never_allocates_after_warmup();
    println!(
        "zero-alloc witness: ok ({} schemes × 4 fault processes + executive horizons \
         + batched sampling)",
        PolicySpec::TAGS.len()
    );
}

/// The batched fault sampler in isolation: once the first refill has
/// reserved the block buffer, draining whole batches across resets —
/// including the constant-block refill path every `next_fault()` miss
/// takes — must not touch the allocator. Rates are high enough that a
/// drain crosses several refills.
fn batched_sampling_never_allocates_after_warmup() {
    use eacp_faults::{BatchedFaults, FaultProcess};

    for (fault_name, fault_spec) in fault_specs() {
        let kind = fault_spec.build(77).expect("valid witness fault spec");
        let mut batched = BatchedFaults::new(kind);
        // Warmup: first drains reserve the batch buffer.
        for seed in 0..WARMUP {
            batched.reset(seed);
            for _ in 0..64 {
                if !batched.next_fault().is_finite() {
                    break;
                }
            }
        }
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut drawn = 0u64;
        for seed in WARMUP..WARMUP + MEASURED {
            batched.reset(seed);
            for _ in 0..64 {
                if !batched.next_fault().is_finite() {
                    break;
                }
                drawn += 1;
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "batched sampling × {fault_name}: {} allocation(s) over {MEASURED} seeded \
             drains (last size {})",
            after - before,
            LAST_SIZE.load(Ordering::SeqCst)
        );
        assert!(
            drawn > MEASURED,
            "batched sampling × {fault_name}: measured window drew too few arrivals \
             ({drawn}) to cross a refill"
        );
    }
}

/// The executive Monte-Carlo hot path: after warmup, one seeded horizon
/// (fault-stream reset, per-task policy resets, a full hyperperiod of
/// EDF jobs, the accumulator fold) must not allocate — the scratch job
/// records, scenario template and policies are pooled in `replicator()`.
fn executive_horizons_never_allocate_after_warmup() {
    for (fault_name, fault_spec) in fault_specs() {
        let lambda = 1.4e-3;
        let mut spec = ExecutiveSpec::new(
            format!("zero-alloc-executive-{fault_name}"),
            TaskSetSpec::implicit([("sensor", 900.0, 4_000), ("control", 2_100.0, 8_000)]),
        );
        spec.faults = fault_spec;
        spec.policy = PolicyAssignment::PerTask(vec![
            PolicySpec::from_tag("a_d_s", lambda, 2, 0).expect("known scheme tag"),
            PolicySpec::from_tag("kft", lambda, 2, 0).expect("known scheme tag"),
        ]);
        spec.hyperperiods = 2;
        spec.seed = 77;
        spec.mc = Some(ExecutiveMcSpec {
            replications: WARMUP + MEASURED,
            threads: 1,
            queue: None,
        });
        let job = ExecutiveJob::from_spec(&spec).expect("valid witness spec");
        // Building the replicator is setup: it allocates the scenario
        // template, pooled scratch and policies exactly once.
        let mut rep = job.replicator();
        let mut acc = job.empty_acc();
        for r in 0..WARMUP {
            rep.run_one(r, &mut acc);
        }
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for r in WARMUP..WARMUP + MEASURED {
            rep.run_one(r, &mut acc);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "executive × faults {fault_name}: {} allocation(s) in {MEASURED} measured \
             horizons (last size {})",
            after - before,
            LAST_SIZE.load(Ordering::SeqCst)
        );
        // Vacuity guard: the measured horizons must exercise the fault /
        // rollback path, exactly where a per-replication allocation would
        // hide.
        assert!(
            acc.faults > 0,
            "executive × faults {fault_name}: no faults over {} horizons",
            acc.horizons
        );
    }
}

fn replication_loop_never_allocates_after_warmup() {
    for tag in PolicySpec::TAGS {
        for (fault_name, fault_spec) in fault_specs() {
            let spec = witness_spec(tag, fault_name, fault_spec);
            let job = Job::from_spec(&spec).expect("valid witness spec");
            let mut obs = NoopObserver;
            // Building the replicator is setup: it allocates the pooled
            // scratch and the concrete policy/fault pair exactly once.
            let mut rep = job.replicator();
            for r in 0..WARMUP {
                rep.run_replication(r, &mut obs);
            }
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let mut faults_seen = 0u64;
            for r in WARMUP..WARMUP + MEASURED {
                let out = rep.run_replication(r, &mut obs);
                faults_seen += u64::from(out.faults);
            }
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert_eq!(
                after - before,
                0,
                "scheme {tag} × faults {fault_name}: {} allocation(s) in {MEASURED} \
                 measured replications (last size {})",
                after - before,
                LAST_SIZE.load(Ordering::SeqCst)
            );
            // The witness is vacuous if the measured window never faults:
            // rollback/recovery is exactly the path most likely to allocate.
            assert!(
                faults_seen > 0,
                "scheme {tag} × faults {fault_name}: no faults in measured window"
            );
        }
    }
}
