//! Microbenchmarks of the paper's analytical kernels: the `interval()`
//! procedure (Fig. 4), `num_SCP`/`num_CCP` (Fig. 2) under both optimizers,
//! the renewal closed forms, the exact recursion, and `t_est`.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_core::analysis::{
    ccp_interval_mean_time, checkpoint_interval, estimated_completion_time, num_ccp, num_scp,
    scp_interval_mean_exact, scp_interval_mean_time, IntervalInputs, OptimizeMethod, RenewalParams,
};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let scp_params = RenewalParams::new(2.0, 20.0, 0.0, 1.4e-3);
    let ccp_params = RenewalParams::new(20.0, 2.0, 0.0, 1.4e-3);

    c.bench_function("interval_procedure", |b| {
        b.iter(|| {
            checkpoint_interval(black_box(IntervalInputs {
                rd: 9_000.0,
                rt: 7_000.0,
                c: 22.0,
                rf: 5.0,
                lambda: 1.4e-3,
            }))
        })
    });

    c.bench_function("num_scp_paper_closed_form", |b| {
        b.iter(|| {
            num_scp(
                black_box(400.0),
                &scp_params,
                OptimizeMethod::PaperClosedForm,
            )
        })
    });
    c.bench_function("num_scp_exact_recursion", |b| {
        b.iter(|| {
            num_scp(
                black_box(400.0),
                &scp_params,
                OptimizeMethod::ExactRecursion,
            )
        })
    });
    c.bench_function("num_ccp_paper_closed_form", |b| {
        b.iter(|| {
            num_ccp(
                black_box(400.0),
                &ccp_params,
                OptimizeMethod::PaperClosedForm,
            )
        })
    });

    c.bench_function("r1_closed_form_eval", |b| {
        b.iter(|| scp_interval_mean_time(black_box(50.0), 400.0, &scp_params))
    });
    c.bench_function("r1_exact_recursion_m16", |b| {
        b.iter(|| scp_interval_mean_exact(black_box(16), 400.0, &scp_params))
    });
    c.bench_function("r2_closed_form_eval", |b| {
        b.iter(|| ccp_interval_mean_time(black_box(50.0), 400.0, &ccp_params))
    });

    c.bench_function("t_est", |b| {
        b.iter(|| estimated_completion_time(black_box(7_600.0), 1.0, 22.0, 1.4e-3))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
