//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * sub-checkpoint subdivision on/off (`A_D_S` vs `A_D`) — the paper's
//!   core mechanism;
//! * `num_SCP` optimizer: paper closed form vs exact recursion;
//! * DVS on/off (`A_D_S` vs fixed-speed `adapchp-SCP`);
//! * fault model: analysis-faithful vs physical (faults during overhead).
//!
//! Each payload runs a small Monte-Carlo batch and asserts outcome sanity
//! so the comparison cannot silently degenerate. Outcome-level ablation
//! values (P/E differences) come from `sweep --kind optimizer` and
//! `sweep --kind store-compare-ratio`.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_core::analysis::OptimizeMethod;
use eacp_core::policies::Adaptive;
use eacp_energy::DvsConfig;
use eacp_exec::{Job, LocalRunner, Runner};
use eacp_faults::PoissonProcess;
use eacp_sim::{CheckpointCosts, ExecutorOptions, Scenario, Summary, TaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LAMBDA: f64 = 1.4e-3;
const REPS: u64 = 200;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn batch(make: impl Fn() -> Adaptive + Send + Sync + 'static, options: ExecutorOptions) -> Summary {
    let job = Job::from_parts(
        "ablation",
        scenario(),
        options,
        REPS,
        9,
        move |_seed| Box::new(make()),
        |seed| Box::new(PoissonProcess::new(LAMBDA, StdRng::seed_from_u64(seed))),
    )
    .expect("valid ablation job");
    let summary = LocalRunner::default().run(&job).expect("ablation job runs");
    assert_eq!(summary.anomalies, 0);
    summary
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("subdivision_on_a_d_s", |b| {
        b.iter(|| batch(|| Adaptive::dvs_scp(LAMBDA, 5), ExecutorOptions::default()))
    });
    group.bench_function("subdivision_off_a_d", |b| {
        b.iter(|| batch(|| Adaptive::adt_dvs(LAMBDA, 5), ExecutorOptions::default()))
    });

    group.bench_function("optimizer_paper_closed_form", |b| {
        b.iter(|| {
            batch(
                || Adaptive::dvs_scp(LAMBDA, 5).with_optimizer(OptimizeMethod::PaperClosedForm),
                ExecutorOptions::default(),
            )
        })
    });
    group.bench_function("optimizer_exact_recursion", |b| {
        b.iter(|| {
            batch(
                || Adaptive::dvs_scp(LAMBDA, 5).with_optimizer(OptimizeMethod::ExactRecursion),
                ExecutorOptions::default(),
            )
        })
    });

    group.bench_function("dvs_on", |b| {
        b.iter(|| batch(|| Adaptive::dvs_scp(LAMBDA, 5), ExecutorOptions::default()))
    });
    group.bench_function("dvs_off_fixed_fast", |b| {
        b.iter(|| batch(|| Adaptive::scp(LAMBDA, 5, 1), ExecutorOptions::default()))
    });

    group.bench_function("fault_model_analysis", |b| {
        b.iter(|| {
            batch(
                || Adaptive::dvs_scp(LAMBDA, 5),
                ExecutorOptions {
                    faults_during_overhead: false,
                    ..ExecutorOptions::default()
                },
            )
        })
    });
    group.bench_function("fault_model_physical", |b| {
        b.iter(|| batch(|| Adaptive::dvs_scp(LAMBDA, 5), ExecutorOptions::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
