//! Executor throughput: single-run latency per scheme and Monte-Carlo
//! scaling, at the paper's nominal operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_core::policies::{Adaptive, KFaultTolerant, PoissonArrival};
use eacp_energy::DvsConfig;
use eacp_faults::PoissonProcess;
use eacp_sim::{
    CheckpointCosts, Executor, ExecutorOptions, MonteCarlo, Policy, Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn single_run(make: impl Fn() -> Box<dyn Policy>, seed: u64) -> f64 {
    let s = scenario();
    let mut p = make();
    let mut f = PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed));
    let out = Executor::new(&s).run(&mut *p, &mut f);
    out.energy
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("single_run_poisson_baseline", |b| {
        b.iter(|| single_run(|| Box::new(PoissonArrival::new(1.4e-3, 0)), black_box(1)))
    });
    c.bench_function("single_run_kft_baseline", |b| {
        b.iter(|| single_run(|| Box::new(KFaultTolerant::new(5, 0)), black_box(1)))
    });
    c.bench_function("single_run_adt_dvs", |b| {
        b.iter(|| single_run(|| Box::new(Adaptive::adt_dvs(1.4e-3, 5)), black_box(1)))
    });
    c.bench_function("single_run_a_d_s", |b| {
        b.iter(|| single_run(|| Box::new(Adaptive::dvs_scp(1.4e-3, 5)), black_box(1)))
    });

    let mut group = c.benchmark_group("monte_carlo_scaling");
    group.sample_size(10);
    for reps in [100u64, 1_000] {
        group.bench_function(format!("a_d_s_{reps}_reps"), |b| {
            b.iter(|| {
                let s = scenario();
                MonteCarlo::new(black_box(reps)).with_seed(3).run(
                    &s,
                    ExecutorOptions::default(),
                    |_| Adaptive::dvs_scp(1.4e-3, 5),
                    |seed| PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed)),
                )
            })
        });
    }
    group.finish();

    // The declarative path: build-and-run straight from an ExperimentSpec
    // document, measuring the spec layer's overhead over the raw driver
    // above (it should be negligible — one policy/fault build per
    // replication either way).
    let spec = eacp_bench::bench_experiment(
        eacp_experiments::TableId::Table1,
        0,
        eacp_experiments::SchemeId::Proposed,
    );
    c.bench_function("spec_driven_anchor_cell", |b| {
        b.iter(|| eacp_spec::run(black_box(&spec)).expect("valid spec"))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
