//! Executor throughput: single-run latency per scheme, Monte-Carlo
//! scaling through the `Job`/`Runner` path, and the observer-overhead
//! guard, at the paper's nominal operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_core::policies::{Adaptive, KFaultTolerant, PoissonArrival};
use eacp_energy::DvsConfig;
use eacp_exec::{Job, LocalRunner, QueueRunner, Runner};
use eacp_faults::PoissonProcess;
use eacp_sim::{
    CheckpointCosts, Executor, ExecutorOptions, Policy, Scenario, TaskSpec, TraceRecorder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn scenario() -> Scenario {
    Scenario::new(
        TaskSpec::from_utilization(0.76, 1.0, 10_000.0),
        CheckpointCosts::paper_scp_variant(),
        DvsConfig::paper_default(),
    )
}

fn single_run(make: impl Fn() -> Box<dyn Policy>, seed: u64) -> f64 {
    let s = scenario();
    let mut p = make();
    let mut f = PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed));
    let out = Executor::new(&s).run(&mut *p, &mut f);
    out.energy
}

/// The boxed-factory escape hatch: fresh `Box<dyn ...>` per replication.
fn mc_job(reps: u64) -> Job {
    Job::from_parts(
        "bench-mc",
        scenario(),
        ExecutorOptions::default(),
        reps,
        3,
        |_seed| Box::new(Adaptive::dvs_scp(1.4e-3, 5)),
        |seed| Box::new(PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed))),
    )
    .expect("valid bench job")
}

/// The same experiment as [`mc_job`] through the spec path: pooled
/// `PolicyKind`/`FaultKind` enums, reset per replication — the
/// zero-allocation, monomorphized hot path.
fn mc_job_pooled(reps: u64) -> Job {
    let mut spec = eacp_spec::ExperimentSpec::paper_nominal();
    spec.name = "bench-mc-pooled".into();
    spec.executor = eacp_spec::ExecSpec::from_options(&ExecutorOptions::default());
    spec.mc = eacp_spec::McSpec {
        replications: reps,
        seed: 3,
        threads: 0,
    };
    Job::from_spec(&spec).expect("valid bench spec")
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("single_run_poisson_baseline", |b| {
        b.iter(|| single_run(|| Box::new(PoissonArrival::new(1.4e-3, 0)), black_box(1)))
    });
    c.bench_function("single_run_kft_baseline", |b| {
        b.iter(|| single_run(|| Box::new(KFaultTolerant::new(5, 0)), black_box(1)))
    });
    c.bench_function("single_run_adt_dvs", |b| {
        b.iter(|| single_run(|| Box::new(Adaptive::adt_dvs(1.4e-3, 5)), black_box(1)))
    });
    c.bench_function("single_run_a_d_s", |b| {
        b.iter(|| single_run(|| Box::new(Adaptive::dvs_scp(1.4e-3, 5)), black_box(1)))
    });

    let mut group = c.benchmark_group("monte_carlo_scaling");
    group.sample_size(10);
    for reps in [100u64, 1_000] {
        group.bench_function(format!("a_d_s_{reps}_reps"), |b| {
            let job = mc_job(black_box(reps));
            let runner = LocalRunner::default();
            b.iter(|| runner.run(&job).expect("bench job runs"))
        });
    }
    // Pooled/monomorphized spec path vs the boxed factories above — the
    // replication hot path's headline comparison (`eacp bench` reports the
    // same pair on the paper-nominal 10k job as BENCH_simulator.json).
    group.bench_function("a_d_s_1000_reps_pooled_spec_path", |b| {
        let job = mc_job_pooled(1_000);
        let runner = LocalRunner::default();
        b.iter(|| runner.run(&job).expect("bench job runs"))
    });
    // The work-queue scheduler against the plain runner at the same pool
    // size: the lease/retry machinery must cost noise, not throughput
    // (results are bit-identical by construction).
    group.bench_function("a_d_s_1000_reps_local_4_threads", |b| {
        let job = mc_job(1_000);
        let runner = LocalRunner::new(4);
        b.iter(|| runner.run(&job).expect("bench job runs"))
    });
    group.bench_function("a_d_s_1000_reps_queue_4_workers", |b| {
        let job = mc_job(1_000);
        let runner = QueueRunner::new(4);
        b.iter(|| runner.run(&job).expect("bench job runs"))
    });
    group.finish();

    // The redesign's regression guard: the no-op-observer engine path must
    // stay at raw `Executor::run` throughput (the sequential single-run
    // loop below is that baseline — same scenario, same seeds);
    // `trace_recorder_observer` shows what a real observer costs on top.
    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(20);
    group.bench_function("noop_observer_job_runner", |b| {
        let job = mc_job(200);
        let runner = LocalRunner::new(1);
        b.iter(|| runner.run(&job).expect("bench job runs"))
    });
    group.bench_function("raw_executor_loop_baseline", |b| {
        let s = scenario();
        let executor = Executor::new(&s).with_options(ExecutorOptions::default());
        b.iter(|| {
            let mut sum = eacp_sim::Summary::empty();
            for rep in 0..200u64 {
                let seed = eacp_sim::replication_seed(3, rep);
                let mut policy = Adaptive::dvs_scp(1.4e-3, 5);
                let mut faults = PoissonProcess::new(1.4e-3, StdRng::seed_from_u64(seed));
                sum.absorb(&executor.run(&mut policy, &mut faults));
            }
            sum
        })
    });
    group.bench_function("trace_recorder_observer", |b| {
        let job = mc_job(200);
        let runner = LocalRunner::new(1);
        b.iter(|| {
            let mut rec = TraceRecorder::new();
            runner.run_observed(&job, &mut rec).expect("bench job runs")
        })
    });
    group.finish();

    // The declarative path: build-and-run straight from an ExperimentSpec
    // document, measuring the spec layer's overhead over the raw driver
    // above (it should be negligible — one policy/fault build per
    // replication either way).
    let spec = eacp_bench::bench_experiment(
        eacp_experiments::TableId::Table1,
        0,
        eacp_experiments::SchemeId::Proposed,
    );
    c.bench_function("spec_driven_anchor_cell", |b| {
        b.iter(|| eacp_exec::run(black_box(&spec)).expect("valid spec"))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
