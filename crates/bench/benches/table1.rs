//! Regenerates anchor cells of the paper's Table 1 (P and E for Poisson,
//! k-f-t, A_D and the proposed scheme) as a Criterion benchmark.
//!
//! Full-replication regeneration: `gen-tables --table 1`.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_bench::{assert_cell_sane, bench_cell};
use eacp_experiments::TableId;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // First part-(a) row: U = 0.76 at the lower λ.
    group.bench_function("part_a_anchor_cell", |b| {
        b.iter(|| {
            let cell = bench_cell(TableId::Table1, black_box(0));
            assert_cell_sane(&cell);
            cell
        })
    });
    // First part-(b) row: U = 0.92, λ = 1e-4, k = 1.
    group.bench_function("part_b_anchor_cell", |b| {
        b.iter(|| {
            let cell = bench_cell(TableId::Table1, black_box(8));
            assert_cell_sane(&cell);
            cell
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
