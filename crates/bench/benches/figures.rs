//! Regenerates the paper's Figures 1 and 5 — execution timelines with a
//! fault, its detection point and the rollback — as a Criterion benchmark
//! (trace capture + ASCII rendering).
//!
//! Human-readable renderings: `cargo run --example trace_timeline`.

use criterion::{criterion_group, criterion_main, Criterion};
use eacp_core::policies::Adaptive;
use eacp_energy::DvsConfig;
use eacp_faults::DeterministicFaults;
use eacp_sim::{CheckpointCosts, Executor, Scenario, TaskSpec, TraceRecorder};
use std::hint::black_box;

fn trace_run(costs: CheckpointCosts, scp: bool) -> String {
    let scenario = Scenario::new(
        TaskSpec::new(600.0, 50_000.0),
        costs,
        DvsConfig::paper_default(),
    );
    let mut policy = if scp {
        Adaptive::scp(2.5e-3, 5, 0)
    } else {
        Adaptive::ccp(2.5e-3, 5, 0)
    };
    let mut faults = DeterministicFaults::new(vec![260.0]);
    let mut rec = TraceRecorder::new();
    let out = Executor::new(&scenario).run_observed(&mut policy, &mut faults, &mut rec);
    assert!(out.completed && out.rollbacks == 1);
    rec.render(100)
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figure1_scp_timeline", |b| {
        b.iter(|| {
            let r = trace_run(black_box(CheckpointCosts::paper_scp_variant()), true);
            assert!(r.contains('↩'));
            r
        })
    });
    c.bench_function("figure5_ccp_timeline", |b| {
        b.iter(|| {
            let r = trace_run(black_box(CheckpointCosts::paper_ccp_variant()), false);
            assert!(r.contains('↩'));
            r
        })
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
