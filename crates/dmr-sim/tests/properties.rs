//! Property-based tests of the DMR executor's invariants.

use eacp_energy::DvsConfig;
use eacp_faults::{DeterministicFaults, PoissonProcess};
use eacp_sim::{
    CheckpointCosts, CheckpointKind, Directive, Executor, ExecutorOptions, PlanContext, Policy,
    Scenario, TaskSpec, TraceRecorder,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed-interval CSCP policy (never aborts).
struct FixedCscp {
    interval: f64,
    speed: usize,
}

impl Policy for FixedCscp {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
        Directive::run(self.speed, self.interval, CheckpointKind::CompareStore)
    }
}

fn scenario(work: f64, deadline: f64, ts: f64, tcp: f64, tr: f64) -> Scenario {
    Scenario::new(
        TaskSpec::new(work, deadline),
        CheckpointCosts::new(ts, tcp, tr),
        DvsConfig::paper_default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault-free accounting identity: finish time equals work time plus
    /// exactly ceil(N / (interval·f)) checkpoint costs; energy equals the
    /// corresponding cycle count at the level's V², doubled for DMR.
    #[test]
    fn fault_free_accounting_identity(
        work in 50.0f64..5_000.0,
        interval in 10.0f64..500.0,
        speed in 0usize..2,
        ts in 0.5f64..30.0,
        tcp in 0.5f64..30.0,
    ) {
        let s = scenario(work, 1e12, ts, tcp, 0.0);
        let mut p = FixedCscp { interval, speed };
        let out = Executor::new(&s).run(&mut p, &mut DeterministicFaults::none());
        prop_assert!(out.completed && out.timely);
        let f = s.dvs.level(speed).frequency;
        let n_chk = (work / (interval * f)).ceil().max(1.0);
        let expected_time = work / f + n_chk * (ts + tcp) / f;
        prop_assert!((out.finish_time - expected_time).abs() < 1e-6,
            "finish {} vs expected {expected_time}", out.finish_time);
        let vsq = s.dvs.level(speed).voltage.powi(2);
        let expected_energy = 2.0 * vsq * (work + n_chk * (ts + tcp));
        prop_assert!((out.energy - expected_energy).abs() / expected_energy < 1e-9);
    }

    /// Under any fault schedule: rollbacks never exceed comparisons, every
    /// completion has all work done, energy is at least the fault-free
    /// floor when completed, and no anomalies arise.
    #[test]
    fn faulty_runs_respect_invariants(
        work in 100.0f64..3_000.0,
        interval in 20.0f64..400.0,
        faults in proptest::collection::vec(0.0f64..20_000.0, 0..30),
    ) {
        let s = scenario(work, 1e12, 2.0, 20.0, 0.0);
        let mut p = FixedCscp { interval, speed: 0 };
        let mut fp = DeterministicFaults::new(faults);
        let out = Executor::new(&s).run(&mut p, &mut fp);
        prop_assert!(out.anomaly.is_none());
        prop_assert!(out.completed, "no deadline pressure: must finish");
        prop_assert!(out.rollbacks <= out.compare_checkpoints + out.compare_store_checkpoints);
        let floor = 2.0 * 2.0 * (work + 22.0); // at least one CSCP
        prop_assert!(out.energy >= floor - 1e-6);
        // Total cycles at least the useful work plus one checkpoint.
        prop_assert!(out.total_cycles >= work + 22.0 - 1e-9);
    }

    /// More injected faults can never make a fixed-interval run finish
    /// earlier (on the same schedule prefix).
    #[test]
    fn faults_never_speed_up_completion(
        base in proptest::collection::vec(1.0f64..5_000.0, 0..6),
        extra in 1.0f64..5_000.0,
    ) {
        let s = scenario(1_000.0, 1e12, 2.0, 20.0, 0.0);
        let run = |times: Vec<f64>| {
            let mut p = FixedCscp { interval: 100.0, speed: 0 };
            let mut fp = DeterministicFaults::new(times);
            Executor::new(&s).run(&mut p, &mut fp)
        };
        let without = run(base.clone());
        let mut with = base;
        with.push(extra);
        let with = run(with);
        prop_assert!(with.finish_time >= without.finish_time - 1e-9);
    }

    /// Trace events are emitted in nondecreasing start-time order and the
    /// recorded fault count matches the outcome.
    #[test]
    fn traces_are_ordered_and_complete(
        seed in 0u64..500,
        lambda in 1e-4f64..5e-3,
    ) {
        let s = scenario(2_000.0, 1e12, 2.0, 20.0, 0.0);
        let mut p = FixedCscp { interval: 150.0, speed: 0 };
        let mut fp = PoissonProcess::new(lambda, StdRng::seed_from_u64(seed));
        let mut rec = TraceRecorder::new();
        let out = Executor::new(&s).run_observed(&mut p, &mut fp, &mut rec);
        prop_assert!(out.completed);
        let mut last = 0.0f64;
        let mut fault_events = 0u32;
        for e in rec.events() {
            prop_assert!(e.start_time() >= last - 1e-9);
            last = last.max(e.start_time());
            if matches!(e, eacp_sim::TraceEvent::Fault { .. }) {
                fault_events += 1;
            }
        }
        prop_assert_eq!(fault_events, out.faults);
    }

    /// Deadline dichotomy: every run either completes, aborts, or is cut
    /// off past the deadline — and `timely` implies completion by D.
    #[test]
    fn deadline_semantics(
        work in 100.0f64..3_000.0,
        deadline in 100.0f64..4_000.0,
        seed in 0u64..200,
    ) {
        let s = scenario(work, deadline, 2.0, 20.0, 0.0);
        let mut p = FixedCscp { interval: 120.0, speed: 0 };
        let mut fp = PoissonProcess::new(1e-3, StdRng::seed_from_u64(seed));
        let out = Executor::new(&s).run(&mut p, &mut fp);
        prop_assert!(out.anomaly.is_none());
        if out.timely {
            prop_assert!(out.completed);
            prop_assert!(out.finish_time <= deadline + 1e-9);
        }
        if !out.completed {
            prop_assert!(out.finish_time > deadline - 1e-9,
                "incomplete runs only end past the deadline");
        }
    }

    /// The analysis fault model (no faults during overhead) never performs
    /// worse than the physical model on the same stream.
    #[test]
    fn overhead_exposure_only_hurts(
        seed in 0u64..300,
    ) {
        let s = scenario(2_000.0, 1e12, 2.0, 20.0, 0.0);
        let run = |overhead: bool| {
            let mut p = FixedCscp { interval: 150.0, speed: 0 };
            let mut fp = PoissonProcess::new(2e-3, StdRng::seed_from_u64(seed));
            Executor::new(&s)
                .with_options(ExecutorOptions {
                    faults_during_overhead: overhead,
                    ..ExecutorOptions::default()
                })
                .run(&mut p, &mut fp)
        };
        let physical = run(true);
        let analysis = run(false);
        prop_assert!(analysis.faults <= physical.faults);
    }
}
