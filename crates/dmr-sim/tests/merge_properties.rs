//! Property tests for `Summary::merge`: merging any partition of the
//! replication outcomes equals the unpartitioned aggregation (the invariant
//! the sharded sweep executor and the multi-threaded runner rely on), with
//! the empty summary as the exact identity.

use eacp_sim::{RunOutcome, Summary};
use proptest::prelude::*;

/// Builds a synthetic outcome from sampled raw values; `status` selects
/// timely / late / aborted / cut-off so every counter path is exercised.
fn outcome(energy: f64, finish: f64, faults: u64, rollbacks: u64, status: u64) -> RunOutcome {
    let status = status % 4;
    RunOutcome {
        completed: status <= 1,
        timely: status == 0,
        finish_time: finish,
        energy,
        faults: faults as u32,
        rollbacks: rollbacks as u32,
        store_checkpoints: (faults * 3 % 17) as u32,
        compare_checkpoints: (rollbacks * 5 % 13) as u32,
        compare_store_checkpoints: 1 + (faults % 7) as u32,
        segments: 1 + (faults + rollbacks) as u32,
        speed_switches: faults % 3,
        cycles_at_fastest: energy % 977.0,
        total_cycles: 1.0 + energy % 7600.0,
        aborted: status == 2,
        anomaly: None,
    }
}

type RawOutcome = (f64, f64, u64, u64, u64);

fn absorb_all(outs: &[RunOutcome]) -> Summary {
    let mut s = Summary::empty();
    for o in outs {
        s.absorb(o);
    }
    s
}

proptest! {
    /// Any multi-way contiguous partition, merged in order, equals the
    /// unpartitioned aggregation: counts exactly, moments to tolerance.
    #[test]
    fn merging_any_partition_equals_unpartitioned_run(
        raw in proptest::collection::vec(
            (1.0f64..1e5, 1.0f64..2e4, 0u64..20, 0u64..10, 0u64..40),
            1..200,
        ),
        cuts in proptest::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let outs: Vec<RunOutcome> =
            raw.iter().map(|&(e, f, fa, r, st): &RawOutcome| outcome(e, f, fa, r, st)).collect();
        let whole = absorb_all(&outs);

        let mut bounds: Vec<usize> = cuts.iter().map(|f| (f * outs.len() as f64) as usize).collect();
        bounds.push(0);
        bounds.push(outs.len());
        bounds.sort_unstable();
        let mut merged = Summary::empty();
        for pair in bounds.windows(2) {
            merged.merge(&absorb_all(&outs[pair[0]..pair[1]]));
        }

        // Counters are exactly partition-invariant.
        prop_assert_eq!(merged.replications, whole.replications);
        prop_assert_eq!(merged.timely, whole.timely);
        prop_assert_eq!(merged.completed, whole.completed);
        prop_assert_eq!(merged.aborted, whole.aborted);
        prop_assert_eq!(merged.anomalies, whole.anomalies);
        prop_assert_eq!(merged.energy_all.count(), whole.energy_all.count());
        prop_assert_eq!(merged.energy_all.min(), whole.energy_all.min());
        prop_assert_eq!(merged.energy_all.max(), whole.energy_all.max());
        prop_assert_eq!(merged.faults.min(), whole.faults.min());
        prop_assert_eq!(merged.faults.max(), whole.faults.max());
        // Float moments match to merge-rounding tolerance.
        let close = |a: f64, b: f64| {
            (a.is_nan() && b.is_nan()) || (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
        };
        prop_assert!(close(merged.energy_all.mean(), whole.energy_all.mean()));
        prop_assert!(close(merged.energy_timely.mean(), whole.energy_timely.mean()));
        prop_assert!(close(merged.finish_timely.mean(), whole.finish_timely.mean()));
        prop_assert!(close(merged.faults.mean(), whole.faults.mean()));
        prop_assert!(close(merged.rollbacks.mean(), whole.rollbacks.mean()));
        prop_assert!(close(merged.checkpoints.mean(), whole.checkpoints.mean()));
        prop_assert!(close(
            merged.energy_all.population_variance(),
            whole.energy_all.population_variance()
        ));
        prop_assert_eq!(merged.p_timely(), whole.p_timely());
    }

    /// The empty summary is an exact two-sided identity of merge.
    #[test]
    fn empty_summary_is_the_merge_identity(
        raw in proptest::collection::vec(
            (1.0f64..1e5, 1.0f64..2e4, 0u64..20, 0u64..10, 0u64..40),
            0..100,
        ),
    ) {
        let outs: Vec<RunOutcome> =
            raw.iter().map(|&(e, f, fa, r, st): &RawOutcome| outcome(e, f, fa, r, st)).collect();
        let s = absorb_all(&outs);

        let mut left = Summary::empty();
        left.merge(&s);
        prop_assert_eq!(&left, &s);

        let mut right = s.clone();
        right.merge(&Summary::empty());
        prop_assert_eq!(&right, &s);
    }
}
