//! The DMR execution engine.

use crate::costs::CheckpointCosts;
use crate::observe::{NoopObserver, Observer};
use crate::outcome::{Anomaly, RunOutcome};
use crate::policy::{CheckpointKind, Directive, PlanContext, Policy};
use crate::scenario::Scenario;
use crate::trace::TraceEvent;
#[cfg(test)]
use crate::trace::TraceRecorder;
use eacp_energy::{EnergyMeter, SpeedLevel};
use eacp_faults::FaultProcess;

/// Tunable executor limits and switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorOptions {
    /// Hard cap on executed operations (segments + checkpoints); exceeded
    /// only by buggy policies. The run is marked with
    /// [`Anomaly::OpBudgetExhausted`] when hit.
    pub max_operations: u64,
    /// Consecutive zero-progress planning rounds tolerated before the run is
    /// marked with [`Anomaly::NoProgress`].
    pub max_stalled_rounds: u32,
    /// Whether faults can strike during checkpoint/rollback operations
    /// (they corrupt the running state but never a snapshot already taken).
    /// The paper's renewal analysis only exposes useful computation to
    /// faults; the default `true` is the more physical choice and the
    /// difference is insignificant (checkpoints are a few percent of time).
    pub faults_during_overhead: bool,
    /// Stop simulating once `now` passes the deadline (the run can no longer
    /// be timely). Baseline schemes without an abort rule rely on this to
    /// terminate; disable only for "run to completion regardless" studies.
    pub stop_at_deadline: bool,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        Self {
            max_operations: 50_000_000,
            max_stalled_rounds: 64,
            faults_during_overhead: true,
            stop_at_deadline: true,
        }
    }
}

/// Wall-clock durations of the fixed-cycle operations at one speed level,
/// plus an exact-reciprocal fast path for cycle→time conversion.
///
/// The engine divides by the current frequency on every segment and
/// checkpoint operation; these values hoist the identical divisions out of
/// the per-segment loop (trivially bit-identical — the same two operands
/// are divided, just once), and `inv_freq` replaces the one remaining
/// per-segment division with a multiplication when the frequency is a
/// power of two: division and multiplication by an exactly representable
/// `2ᵏ` both produce the correctly rounded value of `x·2⁻ᵏ`, so the
/// results are bit-identical there as well.
#[derive(Debug, Clone, Copy)]
struct LevelTimes {
    store: f64,
    compare: f64,
    compare_store: f64,
    rollback: f64,
    inv_freq: f64,
    /// Whether `x * inv_freq` is bit-identical to `x / frequency`.
    inv_exact: bool,
}

impl LevelTimes {
    fn new(costs: &CheckpointCosts, level: SpeedLevel) -> Self {
        let f = level.frequency;
        let inv = 1.0 / f;
        Self {
            store: costs.store_cycles / f,
            compare: costs.compare_cycles / f,
            compare_store: costs.cscp_cycles() / f,
            rollback: costs.rollback_cycles / f,
            inv_freq: inv,
            // Power of two ⇔ zero mantissa (the level is positive, finite
            // and normal by construction), with a representable reciprocal.
            inv_exact: f.to_bits() & ((1u64 << 52) - 1) == 0 && inv.is_finite(),
        }
    }

    /// Duration of one checkpoint operation of `kind` at this level.
    #[inline]
    fn op_time(&self, kind: CheckpointKind) -> f64 {
        match kind {
            CheckpointKind::Store => self.store,
            CheckpointKind::Compare => self.compare,
            CheckpointKind::CompareStore => self.compare_store,
        }
    }

    /// `cycles / frequency`, bit-identical to writing the division.
    #[inline]
    fn time_for(&self, cycles: f64, frequency: f64) -> f64 {
        if self.inv_exact {
            cycles * self.inv_freq
        } else {
            cycles / frequency
        }
    }
}

/// A stored snapshot: a rollback target.
#[derive(Debug, Clone, Copy)]
struct StorePoint {
    /// Task position (cycles) the snapshot captures.
    pos: f64,
    /// Whether the two processors' states agreed when the snapshot was
    /// taken (no un-rolled-back fault had occurred).
    clean: bool,
}

/// Reusable working memory for [`Executor::run_with_scratch`].
///
/// The executor's only heap state is the stack of rollback targets. A
/// fresh scratch per run means one `Vec` allocation per run — millions per
/// Monte-Carlo grid — so replication loops allocate one scratch and thread
/// it through every run: the stack is *cleared*, never reallocated, and
/// its capacity converges to the deepest store stack the workload ever
/// produces.
#[derive(Debug)]
pub struct ExecutorScratch {
    stores: Vec<StorePoint>,
    meter: EnergyMeter,
}

impl Default for ExecutorScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutorScratch {
    /// Creates an empty scratch (first run sizes the store stack and the
    /// energy meter's per-level table).
    // audit:setup: the scratch exists so replications can reuse these
    // buffers — they are allocated here once and only cleared afterwards.
    pub fn new() -> Self {
        Self {
            // Pre-sized past any store depth the paper's scenarios reach
            // (deepest observed stack is ~256 under sub-checkpoint-heavy
            // adaptive schemes), so replications never regrow the stack.
            // The zero-alloc witness in `eacp-exec` checks this holds.
            stores: Vec::with_capacity(1024),
            meter: EnergyMeter::new(1),
        }
    }
}

/// Executes one task run under a [`Policy`] and a fault stream.
///
/// See the crate-level documentation for the execution model, and
/// [`Executor::run`] for the entry point.
#[derive(Debug)]
pub struct Executor<'s> {
    scenario: &'s Scenario,
    options: ExecutorOptions,
}

impl<'s> Executor<'s> {
    /// Creates an executor with default [`ExecutorOptions`].
    pub fn new(scenario: &'s Scenario) -> Self {
        Self {
            scenario,
            options: ExecutorOptions::default(),
        }
    }

    /// Overrides the executor options.
    pub fn with_options(mut self, options: ExecutorOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the task to completion, abort, deadline cut-off or anomaly.
    ///
    /// Equivalent to [`Executor::run_observed`] with a [`NoopObserver`] —
    /// the monomorphized no-op observer compiles away, so this *is* the
    /// fast path.
    ///
    /// Generic over the policy and fault process (`&mut dyn Policy` /
    /// `&mut dyn FaultProcess` still work, as the `?Sized` instantiation):
    /// concrete types monomorphize the whole engine loop, inlining
    /// `plan`/`next_fault` into it with no virtual dispatch.
    pub fn run<P: Policy + ?Sized, F: FaultProcess + ?Sized>(
        &self,
        policy: &mut P,
        faults: &mut F,
    ) -> RunOutcome {
        self.run_observed(policy, faults, &mut NoopObserver)
    }

    /// Like [`Executor::run`], streaming every execution event — segments,
    /// checkpoints, faults, rollbacks, speed changes, deadline misses,
    /// energy samples — into `obs` as it happens.
    pub fn run_observed<P: Policy + ?Sized, F: FaultProcess + ?Sized, O: Observer + ?Sized>(
        &self,
        policy: &mut P,
        faults: &mut F,
        obs: &mut O,
    ) -> RunOutcome {
        self.run_with_scratch(&mut ExecutorScratch::new(), policy, faults, obs)
    }

    /// [`Executor::run_observed`] with caller-pooled working memory — the
    /// zero-allocation hot path every Monte-Carlo runner loops over.
    ///
    /// The scratch is cleared (not reallocated) at entry, so a loop that
    /// reuses one scratch performs no heap allocation per run once the
    /// store stack has reached its steady-state capacity.
    pub fn run_with_scratch<P, F, O>(
        &self,
        scratch: &mut ExecutorScratch,
        policy: &mut P,
        faults: &mut F,
        obs: &mut O,
    ) -> RunOutcome
    where
        P: Policy + ?Sized,
        F: FaultProcess + ?Sized,
        O: Observer + ?Sized,
    {
        let scenario = self.scenario;
        let task = scenario.task;
        let costs: &CheckpointCosts = &scenario.costs;
        let dvs = &scenario.dvs;
        let deadline = task.deadline;

        let meter = &mut scratch.meter;
        meter.reset(scenario.processors);
        let mut now = 0.0_f64;
        let mut pos = 0.0_f64;
        let mut speed = dvs.slowest();
        let mut level = dvs.level(speed);
        let mut times = LevelTimes::new(costs, level);
        // The two processors start in a known-equal, stored state: the task
        // image itself is the first rollback target.
        let stores = &mut scratch.stores;
        stores.clear();
        stores.push(StorePoint {
            pos: 0.0,
            clean: true,
        });
        // Time of the first fault since the states last provably agreed;
        // `Some` means the running states currently diverge.
        let mut pending_fault: Option<f64> = None;
        let mut next_fault = faults.next_fault();

        let mut out = RunOutcome {
            completed: false,
            timely: false,
            finish_time: 0.0,
            energy: 0.0,
            faults: 0,
            rollbacks: 0,
            store_checkpoints: 0,
            compare_checkpoints: 0,
            compare_store_checkpoints: 0,
            segments: 0,
            speed_switches: 0,
            cycles_at_fastest: 0.0,
            total_cycles: 0.0,
            aborted: false,
            anomaly: None,
        };

        let mut ops: u64 = 0;
        let mut stalled_rounds: u32 = 0;
        let mut deadline_missed = false;

        // One planning-view constructor for both planning points in the
        // loop (pre-segment plan and post-compare notification).
        let plan_ctx = |now: f64, pos: f64, speed: usize| PlanContext {
            now,
            position_cycles: pos,
            work_cycles: task.work_cycles,
            deadline,
            speed,
            costs,
            dvs,
        };

        // Advances wall-clock time by `dt`, consuming fault arrivals that
        // land in the window. Returns the number of faults consumed.
        // (A fn, not a closure, so `next_fault` stays a plain local the
        // commit-window fast path below can read between calls.)
        fn advance<F: FaultProcess + ?Sized, O: Observer + ?Sized>(
            faults: &mut F,
            next_fault: &mut f64,
            now: &mut f64,
            dt: f64,
            pending: &mut Option<f64>,
            vulnerable: bool,
            obs: &mut O,
        ) -> u32 {
            let end = *now + dt;
            let mut hit = 0;
            while *next_fault < end {
                if vulnerable {
                    if pending.is_none() {
                        *pending = Some(*next_fault);
                    }
                    hit += 1;
                    // Which processor a fault corrupts is irrelevant to
                    // detection (any divergence fails the comparison); tag
                    // pseudo-randomly from the arrival bits for trace
                    // realism.
                    let proc = (next_fault.to_bits() >> 3) as u32 & 1;
                    obs.on_event(&TraceEvent::Fault {
                        at: *next_fault,
                        processor: proc,
                    });
                }
                *next_fault = faults.next_fault();
            }
            *now = end;
            hit
        }

        loop {
            if self.options.stop_at_deadline && now > deadline {
                break;
            }
            if ops >= self.options.max_operations {
                out.anomaly = Some(Anomaly::OpBudgetExhausted);
                break;
            }

            // --- Commit-window fast path ------------------------------
            // When the policy publishes its committed schedule up to the
            // next commit ([`Policy::commit_window`]) and the pre-sampled
            // next fault arrival provably lands beyond it, the whole
            // window executes here in a tight loop. Every float operation
            // below is the exact operation the general path performs, on
            // the same operands in the same order, so the run state stays
            // bit-identical; the window skips only work that provably has
            // no effect — per-segment `plan()` calls, directive
            // validation, fault scans over empty windows and clean-compare
            // notifications (no-ops by the `commit_window` contract).
            // The guards are conservative (margins of 1e-6 against
            // accumulated rounding of ~1e-10), so near-boundary windows
            // fall back to the general path below instead of ever risking
            // a decision the scalar path would not have made.
            if pending_fault.is_none() {
                if let Some(w) = policy.commit_window(&plan_ctx(now, pos, speed)) {
                    let subs = w.subs as f64;
                    let seg_cycles = w.compute_time * level.frequency;
                    let sub_time = times.op_time(w.sub_kind);
                    let span =
                        (subs + 1.0) * w.compute_time + subs * sub_time + times.compare_store;
                    // Conservative upper bound on the window's end time,
                    // and lower bounds on the work remaining before the
                    // final segment / after the whole window.
                    let upper = (now + span) * (1.0 + 1e-9) + 1e-9;
                    let before_final = (task.work_cycles - pos) - subs * seg_cycles * (1.0 + 1e-9);
                    let after_window = before_final - seg_cycles * (1.0 + 1e-9);
                    let fits = w.speed == speed
                        && w.compute_time > 0.0
                        && w.compute_time.is_finite()
                        && w.sub_kind != CheckpointKind::CompareStore
                        && next_fault > upper
                        && upper <= deadline
                        && ops + 2 * (w.subs as u64 + 1) <= self.options.max_operations
                        && before_final / level.frequency > w.compute_time + 1e-6
                        && after_window > 1e-6;
                    if fits {
                        let sub_cycles = costs.cycles_of(w.sub_kind);
                        let cscp_cycles = costs.cycles_of(CheckpointKind::CompareStore);
                        for i in 0..=w.subs {
                            let last = i == w.subs;
                            let kind = if last {
                                CheckpointKind::CompareStore
                            } else {
                                w.sub_kind
                            };
                            // Segment (the scalar path with `dur ==
                            // compute_time` and an empty fault window).
                            obs.on_event(&TraceEvent::Segment {
                                from: now,
                                to: now + w.compute_time,
                                speed,
                            });
                            now += w.compute_time;
                            pos = (pos + seg_cycles).min(task.work_cycles);
                            meter.record_cycles(seg_cycles, level);
                            out.segments += 1;
                            // Checkpoint operation (clean by construction).
                            let op_cycles = if last { cscp_cycles } else { sub_cycles };
                            let op_time = if last { times.compare_store } else { sub_time };
                            obs.on_event(&TraceEvent::Checkpoint {
                                kind,
                                from: now,
                                to: now + op_time,
                                position: pos,
                                mismatch: false,
                            });
                            now += op_time;
                            if op_cycles > 0.0 {
                                meter.record_cycles(op_cycles, level);
                            }
                            ops += 2;
                            match kind {
                                CheckpointKind::Store => {
                                    out.store_checkpoints += 1;
                                    stores.push(StorePoint { pos, clean: true });
                                }
                                CheckpointKind::Compare => out.compare_checkpoints += 1,
                                CheckpointKind::CompareStore => {
                                    out.compare_store_checkpoints += 1;
                                    stores.clear();
                                    stores.push(StorePoint { pos, clean: true });
                                }
                            }
                            obs.on_energy_sample(now, meter.total());
                        }
                        policy.on_commit_window_executed();
                        stalled_rounds = 0;
                        continue;
                    }
                }
            }

            let directive = policy.plan(&plan_ctx(now, pos, speed));

            let (want_speed, compute_time, checkpoint) = match directive {
                Directive::Abort => {
                    out.aborted = true;
                    break;
                }
                Directive::Run {
                    speed,
                    compute_time,
                    checkpoint,
                } => (speed, compute_time, checkpoint),
            };

            if want_speed >= dvs.len() {
                out.anomaly = Some(Anomaly::InvalidSpeed);
                break;
            }
            if !compute_time.is_finite() || compute_time < 0.0 {
                out.anomaly = Some(Anomaly::InvalidComputeTime);
                break;
            }

            if want_speed != speed {
                obs.on_event(&TraceEvent::SpeedChange {
                    at: now,
                    from: speed,
                    to: want_speed,
                });
                speed = want_speed;
                level = dvs.level(speed);
                times = LevelTimes::new(costs, level);
                out.speed_switches += 1;
                if dvs.switch_time > 0.0 {
                    advance(
                        faults,
                        &mut next_fault,
                        &mut now,
                        dvs.switch_time,
                        &mut pending_fault,
                        self.options.faults_during_overhead,
                        obs,
                    );
                }
                if dvs.switch_energy > 0.0 {
                    meter.record_switch(dvs.switch_energy);
                }
            }
            // --- Computation segment -------------------------------------
            let remaining_time = times.time_for(task.work_cycles - pos, level.frequency);
            let dur = compute_time.min(remaining_time).max(0.0);
            let progressed = dur > 0.0;
            if progressed {
                // Emit the segment before consuming its fault window so the
                // trace stays sorted by event start time.
                obs.on_event(&TraceEvent::Segment {
                    from: now,
                    to: now + dur,
                    speed,
                });
                out.faults += advance(
                    faults,
                    &mut next_fault,
                    &mut now,
                    dur,
                    &mut pending_fault,
                    true,
                    obs,
                );
                let cycles = dur * level.frequency;
                pos = (pos + cycles).min(task.work_cycles);
                meter.record_cycles(cycles, level);
                out.segments += 1;
                ops += 1;
            }

            // --- Checkpoint operation ------------------------------------
            // Snapshot/comparison semantics are evaluated at operation
            // start; the operation's own duration is still fault-exposed.
            let snapshot_diverged = pending_fault.is_some();
            let op_cycles = costs.cycles_of(checkpoint);
            let op_time = times.op_time(checkpoint);
            obs.on_event(&TraceEvent::Checkpoint {
                kind: checkpoint,
                from: now,
                to: now + op_time,
                position: pos,
                mismatch: checkpoint.compares() && snapshot_diverged,
            });
            out.faults += advance(
                faults,
                &mut next_fault,
                &mut now,
                op_time,
                &mut pending_fault,
                self.options.faults_during_overhead,
                obs,
            );
            if op_cycles > 0.0 {
                meter.record_cycles(op_cycles, level);
            }
            ops += 1;
            match checkpoint {
                CheckpointKind::Store => out.store_checkpoints += 1,
                CheckpointKind::Compare => out.compare_checkpoints += 1,
                CheckpointKind::CompareStore => out.compare_store_checkpoints += 1,
            }

            let mut rolled_back = false;
            match checkpoint {
                CheckpointKind::Store => {
                    stores.push(StorePoint {
                        pos,
                        clean: !snapshot_diverged,
                    });
                }
                CheckpointKind::Compare => {
                    if !snapshot_diverged {
                        // Agreement verified, but nothing stored: rollback
                        // targets are unchanged (paper Fig. 5 semantics).
                    } else {
                        rolled_back = true;
                    }
                }
                CheckpointKind::CompareStore => {
                    if !snapshot_diverged {
                        // Commit: this snapshot is verified-equal and
                        // stored; earlier targets can never be needed again.
                        stores.clear();
                        stores.push(StorePoint { pos, clean: true });
                    } else {
                        rolled_back = true;
                    }
                }
            }

            if rolled_back {
                // Discard snapshots taken after the divergence began: the
                // newest clean snapshot is the rollback target. The bottom
                // of the stack is always a clean committed state.
                while stores.last().is_some_and(|s| !s.clean) {
                    stores.pop();
                }
                // audit:allow(panic): the bottom of the store stack is the
                // initial committed state and is never popped (`!s.clean`
                // is false for it), so `last()` cannot be empty here.
                let target = *stores.last().expect("a committed state always remains");
                debug_assert!(target.clean);
                pos = target.pos;
                pending_fault = None;
                out.rollbacks += 1;
                let rb_time = times.rollback;
                obs.on_event(&TraceEvent::Rollback {
                    from: now,
                    to: now + rb_time,
                    to_position: target.pos,
                });
                if costs.rollback_cycles > 0.0 {
                    out.faults += advance(
                        faults,
                        &mut next_fault,
                        &mut now,
                        rb_time,
                        &mut pending_fault,
                        self.options.faults_during_overhead,
                        obs,
                    );
                    meter.record_cycles(costs.rollback_cycles, level);
                }
            } else if checkpoint.compares() && !snapshot_diverged && pos >= task.work_cycles - 1e-9
            {
                // All work done and verified by a passing comparison.
                out.completed = true;
                out.timely = now <= deadline;
                obs.on_event(&TraceEvent::Complete { at: now });
            }
            obs.on_energy_sample(now, meter.total());
            if !deadline_missed && now > deadline {
                deadline_missed = true;
                obs.on_deadline_miss(now);
            }

            if checkpoint.compares() {
                policy.on_compare(&plan_ctx(now, pos, speed), checkpoint, snapshot_diverged);
            }

            if out.completed {
                break;
            }

            if progressed || rolled_back || op_cycles > 0.0 {
                stalled_rounds = 0;
            } else {
                stalled_rounds += 1;
                if stalled_rounds > self.options.max_stalled_rounds {
                    out.anomaly = Some(Anomaly::NoProgress);
                    break;
                }
            }
        }

        if out.aborted {
            obs.on_event(&TraceEvent::Abort { at: now });
        }
        out.finish_time = now;
        if !out.completed {
            out.timely = false;
        }
        out.energy = meter.total();
        out.cycles_at_fastest = meter.cycles_at_frequency(dvs.level(dvs.fastest()).frequency);
        out.total_cycles = meter.total_cycles();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use eacp_energy::DvsConfig;
    use eacp_faults::DeterministicFaults;

    /// Fixed-interval policy used throughout the engine tests.
    struct FixedCscp {
        interval: f64,
        speed: usize,
    }

    impl Policy for FixedCscp {
        fn name(&self) -> &'static str {
            "fixed-cscp"
        }
        fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
            Directive::run(self.speed, self.interval, CheckpointKind::CompareStore)
        }
    }

    /// SCP-scheme policy with a static schedule: `m − 1` stores then a CSCP.
    struct FixedScpScheme {
        sub_interval: f64,
        m: u32,
        seg: u32,
    }

    impl Policy for FixedScpScheme {
        fn name(&self) -> &'static str {
            "fixed-scp"
        }
        fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
            let kind = if (self.seg + 1).is_multiple_of(self.m) {
                CheckpointKind::CompareStore
            } else {
                CheckpointKind::Store
            };
            self.seg += 1;
            Directive::run(0, self.sub_interval, kind)
        }
        fn on_compare(&mut self, ctx: &PlanContext<'_>, _k: CheckpointKind, mismatch: bool) {
            if mismatch {
                // Realign the schedule with the rollback position.
                self.seg = (ctx.position_cycles / self.sub_interval).round() as u32 % self.m;
            }
        }
    }

    fn scenario(n: f64, d: f64) -> Scenario {
        Scenario::new(
            TaskSpec::new(n, d),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        )
    }

    #[test]
    fn fault_free_run_exact_accounting() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed && out.timely);
        assert_eq!(out.segments, 10);
        assert_eq!(out.compare_store_checkpoints, 10);
        assert_eq!(out.faults, 0);
        assert_eq!(out.rollbacks, 0);
        // 1000 work + 10 × 22 checkpoint cycles at f = 1.
        assert!((out.finish_time - 1220.0).abs() < 1e-9);
        // Energy: 2 processors × V² = 2 × 1220 cycles.
        assert!((out.energy - 2.0 * 2.0 * 1220.0).abs() < 1e-6);
        assert_eq!(out.fast_fraction(), 0.0);
    }

    #[test]
    fn fault_free_run_at_high_speed_halves_time() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 50.0,
            speed: 1,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        // 10 segments of 50 time units (100 cycles each) + 10 CSCPs of 11
        // time units (22 cycles at f = 2).
        assert!((out.finish_time - (500.0 + 110.0)).abs() < 1e-9);
        // One implicit switch from the slowest initial speed.
        assert_eq!(out.speed_switches, 1);
        assert_eq!(out.fast_fraction(), 1.0);
        // Energy at V² = 4.
        assert!((out.energy - 2.0 * 4.0 * 1220.0).abs() < 1e-6);
    }

    #[test]
    fn single_fault_rolls_back_one_interval() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        // Fault in the middle of the third segment. Segments end at
        // 122k boundaries: segment 3 spans [244, 344).
        let mut f = DeterministicFaults::new(vec![300.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed && out.timely);
        assert_eq!(out.faults, 1);
        assert_eq!(out.rollbacks, 1);
        assert_eq!(out.segments, 11);
        assert_eq!(out.compare_store_checkpoints, 11);
        // One extra interval (100 + 22) on top of the fault-free 1220.
        assert!((out.finish_time - 1342.0).abs() < 1e-9);
    }

    #[test]
    fn fault_during_checkpoint_detected_next_interval() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        // First CSCP op spans [100, 122): snapshot at t = 100 is clean, the
        // fault at t = 110 corrupts the running state; the mismatch is
        // detected at the *second* CSCP (t = 222) and rolls back to pos 100.
        let mut f = DeterministicFaults::new(vec![110.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        assert_eq!(out.rollbacks, 1);
        assert!((out.finish_time - 1342.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_faults_can_be_disabled() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::new(vec![110.0]);
        let opts = ExecutorOptions {
            faults_during_overhead: false,
            ..ExecutorOptions::default()
        };
        let out = Executor::new(&s).with_options(opts).run(&mut p, &mut f);
        // The fault lands inside a checkpoint window and is ignored.
        assert_eq!(out.faults, 0);
        assert_eq!(out.rollbacks, 0);
        assert!((out.finish_time - 1220.0).abs() < 1e-9);
    }

    #[test]
    fn scp_scheme_rolls_back_to_last_clean_store() {
        // One CSCP interval of 400 cycles split into m = 4 sub-intervals of
        // 100; SCPs at 100, 200, 300 (positions), CSCP at 400.
        let s = Scenario::new(
            TaskSpec::new(400.0, 10_000.0),
            CheckpointCosts::new(2.0, 20.0, 0.0),
            DvsConfig::paper_default(),
        );
        let mut p = FixedScpScheme {
            sub_interval: 100.0,
            m: 4,
            seg: 0,
        };
        // Timeline: seg1 [0,100) +SCP 2 → t=102; seg2 [102,202) +SCP → 204;
        // seg3 [204,304) +SCP → 306; seg4 [306,406) +CSCP 22 → 428.
        // Fault at t = 250 lands in segment 3 (positions 200..300): the
        // mismatch is detected at the CSCP (t = 406 snapshot) and rolls
        // back to the SCP at position 200 (stored at t = 202–204, clean).
        let mut f = DeterministicFaults::new(vec![250.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        assert_eq!(out.rollbacks, 1);
        // Work re-executed: positions 200..400 (two sub-intervals), with
        // 1 SCP + 1 CSCP of overhead on the retry.
        // Total time: fault-free pass to first CSCP end = 400 + 3·2 + 22 =
        // 428; retry = 200 + 2 + 22 = 224; total = 652.
        assert!(
            (out.finish_time - 652.0).abs() < 1e-9,
            "finish = {}",
            out.finish_time
        );
        assert_eq!(out.store_checkpoints, 4); // 3 + 1 re-executed
        assert_eq!(out.compare_store_checkpoints, 2); // failed + passing
    }

    #[test]
    fn ccp_mismatch_rolls_back_to_interval_start() {
        // CCP scheme: compares at sub-interval boundaries, stores only at
        // the enclosing CSCP; a fault detected at the first CCP must roll
        // back to position 0.
        struct CcpScheme {
            sub: f64,
            m: u32,
            seg: u32,
        }
        impl Policy for CcpScheme {
            fn name(&self) -> &'static str {
                "fixed-ccp"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                let kind = if (self.seg + 1).is_multiple_of(self.m) {
                    CheckpointKind::CompareStore
                } else {
                    CheckpointKind::Compare
                };
                self.seg += 1;
                Directive::run(0, self.sub, kind)
            }
            fn on_compare(&mut self, _c: &PlanContext<'_>, _k: CheckpointKind, mismatch: bool) {
                if mismatch {
                    self.seg = 0;
                }
            }
        }
        let s = Scenario::new(
            TaskSpec::new(400.0, 10_000.0),
            CheckpointCosts::new(20.0, 2.0, 0.0),
            DvsConfig::paper_default(),
        );
        let mut p = CcpScheme {
            sub: 100.0,
            m: 4,
            seg: 0,
        };
        // Fault at t = 50, in the first sub-interval: detected at the CCP at
        // t = 100 (cost 2), rolled back to position 0 at t = 102.
        let mut f = DeterministicFaults::new(vec![50.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        assert_eq!(out.rollbacks, 1);
        // Retry from scratch: 3 CCPs (2 cycles) + CSCP (22 cycles) + 400
        // work = 428; plus the aborted first attempt 100 + 2 = 102.
        assert!(
            (out.finish_time - 530.0).abs() < 1e-9,
            "finish = {}",
            out.finish_time
        );
        assert_eq!(out.compare_checkpoints, 4); // 1 failed + 3 clean
    }

    #[test]
    fn late_completion_is_untimely() {
        let s = scenario(1000.0, 1100.0); // needs 1220 fault-free
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        // The final interval starts before the deadline and finishes after
        // it: the run completes, but late.
        assert!(out.completed);
        assert!(!out.timely);
        assert!((out.finish_time - 1220.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_cutoff_stops_doomed_runs() {
        let s = scenario(10_000.0, 1000.0); // hopeless: needs 12_200
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(!out.completed && !out.timely);
        // Stopped at the first operation boundary past the deadline.
        assert!(out.finish_time > 1000.0);
        assert!(out.finish_time < 1000.0 + 123.0);
        // Energy charged only up to the cut-off.
        assert!(out.energy <= 2.0 * 2.0 * (1000.0 + 122.0) + 1e-6);
    }

    #[test]
    fn completion_exactly_at_deadline_is_timely() {
        // 1000 work + 10 CSCPs × 22 = 1220 exactly.
        let s = scenario(1000.0, 1220.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed && out.timely);
        assert!((out.finish_time - 1220.0).abs() < 1e-9);
    }

    #[test]
    fn abort_directive_fails_run() {
        struct Quitter;
        impl Policy for Quitter {
            fn name(&self) -> &'static str {
                "quitter"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                Directive::Abort
            }
        }
        let s = scenario(1000.0, 10_000.0);
        let out = Executor::new(&s).run(&mut Quitter, &mut DeterministicFaults::none());
        assert!(out.aborted && !out.completed && !out.timely);
        assert_eq!(out.energy, 0.0);
    }

    #[test]
    fn invalid_speed_is_flagged() {
        struct Bad;
        impl Policy for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                Directive::run(9, 1.0, CheckpointKind::CompareStore)
            }
        }
        let s = scenario(1000.0, 10_000.0);
        let out = Executor::new(&s).run(&mut Bad, &mut DeterministicFaults::none());
        assert_eq!(out.anomaly, Some(Anomaly::InvalidSpeed));
    }

    #[test]
    fn invalid_compute_time_is_flagged() {
        struct Bad;
        impl Policy for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                Directive::run(0, f64::NAN, CheckpointKind::CompareStore)
            }
        }
        let s = scenario(1000.0, 10_000.0);
        let out = Executor::new(&s).run(&mut Bad, &mut DeterministicFaults::none());
        assert_eq!(out.anomaly, Some(Anomaly::InvalidComputeTime));
    }

    #[test]
    fn segment_overshoot_is_clamped_to_task_end() {
        let s = scenario(130.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::none();
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        // Segments: 100 + 30 (clamped); 2 CSCPs.
        assert_eq!(out.segments, 2);
        assert!((out.finish_time - (130.0 + 44.0)).abs() < 1e-9);
    }

    #[test]
    fn multiple_faults_in_one_interval_count_once_for_rollback() {
        let s = scenario(1000.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::new(vec![10.0, 20.0, 30.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        assert_eq!(out.faults, 3);
        assert_eq!(out.rollbacks, 1);
        assert!((out.finish_time - 1342.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_are_consistent() {
        let s = scenario(300.0, 10_000.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::new(vec![150.0]);
        let mut rec = TraceRecorder::new();
        let out = Executor::new(&s).run_observed(&mut p, &mut f, &mut rec);
        assert!(out.completed);
        let events = rec.events();
        assert!(!events.is_empty());
        // Events are time-ordered.
        let mut last = 0.0;
        for e in events {
            let t = e.start_time();
            assert!(t >= last - 1e-9, "out of order: {e:?}");
            last = t;
        }
        assert!(matches!(
            events.last().unwrap(),
            TraceEvent::Complete { .. }
        ));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Fault { .. }))
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Rollback { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn observer_sees_deadline_miss_and_energy_samples() {
        use crate::observe::Observer;

        #[derive(Default)]
        struct Probe {
            deadline_misses: u32,
            deadline_at: f64,
            samples: Vec<f64>,
        }
        impl Observer for Probe {
            fn on_deadline_miss(&mut self, at: f64) {
                self.deadline_misses += 1;
                self.deadline_at = at;
            }
            fn on_energy_sample(&mut self, _at: f64, cumulative: f64) {
                self.samples.push(cumulative);
            }
        }

        // Late completion: 1000 work needs 1220 > D = 1100.
        let s = scenario(1000.0, 1100.0);
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut probe = Probe::default();
        let out =
            Executor::new(&s).run_observed(&mut p, &mut DeterministicFaults::none(), &mut probe);
        assert!(out.completed && !out.timely);
        // Exactly one miss, at the moment the clock first passed D.
        assert_eq!(probe.deadline_misses, 1);
        assert!(probe.deadline_at > 1100.0);
        // One cumulative sample per checkpoint operation, non-decreasing,
        // ending at the run's total energy.
        assert_eq!(probe.samples.len(), 10);
        assert!(probe.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!((probe.samples.last().unwrap() - out.energy).abs() < 1e-9);
    }

    #[test]
    fn observed_run_matches_blind_run_exactly() {
        let s = scenario(1000.0, 10_000.0);
        let run = |observed: bool| {
            let mut p = FixedCscp {
                interval: 100.0,
                speed: 0,
            };
            let mut f = DeterministicFaults::new(vec![110.0, 300.0, 820.0]);
            let exec = Executor::new(&s);
            if observed {
                let mut rec = TraceRecorder::new();
                exec.run_observed(&mut p, &mut f, &mut rec)
            } else {
                exec.run(&mut p, &mut f)
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn no_progress_policy_is_flagged() {
        struct Lazy;
        impl Policy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
                // Zero compute, zero-cost checkpoint would stall forever —
                // but CheckpointCosts forbids a free CSCP, so use Store with
                // zero store cost.
                Directive::run(0, 0.0, CheckpointKind::Store)
            }
        }
        let s = Scenario::new(
            TaskSpec::new(100.0, 1000.0),
            CheckpointCosts::new(0.0, 5.0, 0.0),
            DvsConfig::paper_default(),
        );
        let out = Executor::new(&s).run(&mut Lazy, &mut DeterministicFaults::none());
        assert_eq!(out.anomaly, Some(Anomaly::NoProgress));
    }

    #[test]
    fn rollback_cost_is_charged() {
        let s = Scenario::new(
            TaskSpec::new(200.0, 10_000.0),
            CheckpointCosts::new(2.0, 20.0, 10.0),
            DvsConfig::paper_default(),
        );
        let mut p = FixedCscp {
            interval: 100.0,
            speed: 0,
        };
        let mut f = DeterministicFaults::new(vec![50.0]);
        let out = Executor::new(&s).run(&mut p, &mut f);
        assert!(out.completed);
        assert_eq!(out.rollbacks, 1);
        // Fault-free: 200 + 2·22 = 244; retry adds 100 + 22 + 10 = 132.
        assert!(
            (out.finish_time - 376.0).abs() < 1e-9,
            "finish = {}",
            out.finish_time
        );
    }
}
