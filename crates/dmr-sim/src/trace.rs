//! Execution traces and the ASCII timeline renderer.
//!
//! The paper's Figures 1 and 5 depict one CSCP interval with an error: where
//! the fault strikes, where it is detected, and where the pair rolls back
//! to. [`render_timeline`] reproduces those figures from an actual recorded
//! execution, e.g.:
//!
//! ```text
//! t=0........104: ──────S──────S──✗───S──────C! ↩ pos 200
//! ```

use crate::policy::CheckpointKind;

/// One recorded execution event.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// A computation segment.
    Segment {
        /// Start time.
        from: f64,
        /// End time.
        to: f64,
        /// Speed level index.
        speed: usize,
    },
    /// A checkpoint operation.
    Checkpoint {
        /// Operation kind.
        kind: CheckpointKind,
        /// Operation start time.
        from: f64,
        /// Operation end time.
        to: f64,
        /// Task position (cycles) at the operation.
        position: f64,
        /// Whether a comparing checkpoint detected divergence.
        mismatch: bool,
    },
    /// A transient fault striking one processor.
    Fault {
        /// Arrival time.
        at: f64,
        /// Processor index (0 or 1).
        processor: u32,
    },
    /// A rollback to an earlier stored position.
    Rollback {
        /// Rollback start time.
        from: f64,
        /// Rollback end time.
        to: f64,
        /// Restored task position (cycles).
        to_position: f64,
    },
    /// A processor speed change.
    SpeedChange {
        /// Time of the switch.
        at: f64,
        /// Previous speed level index.
        from: usize,
        /// New speed level index.
        to: usize,
    },
    /// Successful, verified task completion.
    Complete {
        /// Completion time.
        at: f64,
    },
    /// The policy aborted the run.
    Abort {
        /// Abort time.
        at: f64,
    },
}

impl TraceEvent {
    /// The wall-clock time at which the event begins.
    pub fn start_time(&self) -> f64 {
        match *self {
            TraceEvent::Segment { from, .. } => from,
            TraceEvent::Checkpoint { from, .. } => from,
            TraceEvent::Fault { at, .. } => at,
            TraceEvent::Rollback { from, .. } => from,
            TraceEvent::SpeedChange { at, .. } => at,
            TraceEvent::Complete { at } => at,
            TraceEvent::Abort { at } => at,
        }
    }
}

/// Collects [`TraceEvent`]s during a run.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace as an ASCII timeline (see [`render_timeline`]).
    pub fn render(&self, columns: usize) -> String {
        render_timeline(&self.events, columns)
    }
}

/// Renders events as a proportional ASCII timeline plus an event log.
///
/// Symbols: `─` computation at `f1`, `═` computation at `f2` (or faster),
/// `S` store checkpoint, `C` compare checkpoint, `#` compare-and-store,
/// `!` suffix on a mismatching comparison, `✗` fault, `↩` rollback,
/// `✓` completion, `▲` abort.
///
/// `columns` is the width of the proportional bar (minimum 20).
pub fn render_timeline(events: &[TraceEvent], columns: usize) -> String {
    let columns = columns.max(20);
    let t_end = events
        .iter()
        .map(|e| match *e {
            TraceEvent::Segment { to, .. }
            | TraceEvent::Checkpoint { to, .. }
            | TraceEvent::Rollback { to, .. } => to,
            ref e => e.start_time(),
        })
        .fold(0.0_f64, f64::max);
    if t_end <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let col_of = |t: f64| -> usize { ((t / t_end) * (columns - 1) as f64).round() as usize };

    let mut bar: Vec<char> = vec![' '; columns];
    for e in events {
        match *e {
            TraceEvent::Segment { from, to, speed } => {
                let glyph = if speed == 0 { '─' } else { '═' };
                for cell in bar.iter_mut().take(col_of(to) + 1).skip(col_of(from)) {
                    if *cell == ' ' {
                        *cell = glyph;
                    }
                }
            }
            TraceEvent::Checkpoint {
                kind,
                from,
                mismatch,
                ..
            } => {
                let glyph = match (kind, mismatch) {
                    (CheckpointKind::Store, _) => 'S',
                    (CheckpointKind::Compare, false) => 'C',
                    (CheckpointKind::CompareStore, false) => '#',
                    (_, true) => '!',
                };
                bar[col_of(from)] = glyph;
            }
            TraceEvent::Fault { at, .. } => bar[col_of(at)] = '✗',
            TraceEvent::Rollback { from, .. } => bar[col_of(from)] = '↩',
            TraceEvent::SpeedChange { .. } => {}
            TraceEvent::Complete { at } => bar[col_of(at).min(columns - 1)] = '✓',
            TraceEvent::Abort { at } => bar[col_of(at).min(columns - 1)] = '▲',
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "0 {} {:.1}\n",
        bar.iter().collect::<String>(),
        t_end
    ));
    for e in events {
        match *e {
            TraceEvent::Segment { from, to, speed } => {
                out.push_str(&format!("  [{from:>10.1}, {to:>10.1}] compute @f{speed}\n"));
            }
            TraceEvent::Checkpoint {
                kind,
                from,
                to,
                position,
                mismatch,
            } => {
                let name = match kind {
                    CheckpointKind::Store => "SCP ",
                    CheckpointKind::Compare => "CCP ",
                    CheckpointKind::CompareStore => "CSCP",
                };
                let verdict = if !kind.compares() {
                    "stored"
                } else if mismatch {
                    "MISMATCH"
                } else {
                    "agree"
                };
                out.push_str(&format!(
                    "  [{from:>10.1}, {to:>10.1}] {name} @pos {position:.1}: {verdict}\n"
                ));
            }
            TraceEvent::Fault { at, processor } => {
                out.push_str(&format!("  [{at:>10.1}] fault on processor {processor}\n"));
            }
            TraceEvent::Rollback {
                from,
                to,
                to_position,
            } => {
                out.push_str(&format!(
                    "  [{from:>10.1}, {to:>10.1}] rollback to pos {to_position:.1}\n"
                ));
            }
            TraceEvent::SpeedChange { at, from, to } => {
                out.push_str(&format!("  [{at:>10.1}] speed f{from} -> f{to}\n"));
            }
            TraceEvent::Complete { at } => {
                out.push_str(&format!("  [{at:>10.1}] task complete\n"));
            }
            TraceEvent::Abort { at } => {
                out.push_str(&format!("  [{at:>10.1}] task aborted\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Segment {
                from: 0.0,
                to: 100.0,
                speed: 0,
            },
            TraceEvent::Fault {
                at: 50.0,
                processor: 1,
            },
            TraceEvent::Checkpoint {
                kind: CheckpointKind::Store,
                from: 100.0,
                to: 102.0,
                position: 100.0,
                mismatch: false,
            },
            TraceEvent::Segment {
                from: 102.0,
                to: 202.0,
                speed: 1,
            },
            TraceEvent::Checkpoint {
                kind: CheckpointKind::CompareStore,
                from: 202.0,
                to: 224.0,
                position: 300.0,
                mismatch: true,
            },
            TraceEvent::Rollback {
                from: 224.0,
                to: 224.0,
                to_position: 0.0,
            },
            TraceEvent::Complete { at: 500.0 },
        ]
    }

    #[test]
    fn recorder_accumulates() {
        let mut rec = TraceRecorder::new();
        assert!(rec.is_empty());
        for e in sample_events() {
            rec.push(e);
        }
        assert_eq!(rec.len(), 7);
        assert_eq!(rec.events().len(), 7);
        assert_eq!(rec.clone().into_events().len(), 7);
    }

    #[test]
    fn render_contains_markers() {
        let r = render_timeline(&sample_events(), 60);
        assert!(r.contains('✗'), "fault marker missing:\n{r}");
        assert!(r.contains('↩'), "rollback marker missing:\n{r}");
        assert!(r.contains('S'), "store marker missing:\n{r}");
        assert!(r.contains('!'), "mismatch marker missing:\n{r}");
        assert!(r.contains('✓'), "completion marker missing:\n{r}");
        assert!(r.contains("MISMATCH"));
        assert!(r.contains("rollback to pos 0.0"));
    }

    #[test]
    fn render_empty_trace() {
        assert_eq!(render_timeline(&[], 40), "(empty trace)\n");
    }

    #[test]
    fn render_clamps_width() {
        let r = render_timeline(&sample_events(), 1);
        // Width clamps to 20; the bar line exists and is bounded.
        let first = r.lines().next().unwrap();
        assert!(first.chars().count() <= 20 + 16);
    }

    #[test]
    fn start_times_cover_all_variants() {
        for e in sample_events() {
            assert!(e.start_time() >= 0.0);
        }
        assert_eq!(
            TraceEvent::SpeedChange {
                at: 3.0,
                from: 0,
                to: 1
            }
            .start_time(),
            3.0
        );
        assert_eq!(TraceEvent::Abort { at: 9.0 }.start_time(), 9.0);
    }
}

/// Serializes events as CSV (`event,start,end,position,speed,detail`) for
/// external plotting; one row per event.
///
/// # Examples
///
/// ```
/// use eacp_sim::trace::{events_to_csv, TraceEvent};
/// let csv = events_to_csv(&[TraceEvent::Complete { at: 5.0 }]);
/// assert!(csv.starts_with("event,start,end,position,speed,detail\n"));
/// assert!(csv.contains("complete,5"));
/// ```
pub fn events_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("event,start,end,position,speed,detail\n");
    for e in events {
        match *e {
            TraceEvent::Segment { from, to, speed } => {
                out.push_str(&format!("segment,{from},{to},,{speed},\n"));
            }
            TraceEvent::Checkpoint {
                kind,
                from,
                to,
                position,
                mismatch,
            } => {
                let name = match kind {
                    CheckpointKind::Store => "scp",
                    CheckpointKind::Compare => "ccp",
                    CheckpointKind::CompareStore => "cscp",
                };
                let detail = if !kind.compares() {
                    "stored"
                } else if mismatch {
                    "mismatch"
                } else {
                    "agree"
                };
                out.push_str(&format!("{name},{from},{to},{position},,{detail}\n"));
            }
            TraceEvent::Fault { at, processor } => {
                out.push_str(&format!("fault,{at},{at},,,proc{processor}\n"));
            }
            TraceEvent::Rollback {
                from,
                to,
                to_position,
            } => {
                out.push_str(&format!("rollback,{from},{to},{to_position},,\n"));
            }
            TraceEvent::SpeedChange { at, from, to } => {
                out.push_str(&format!("speed_change,{at},{at},,,f{from}->f{to}\n"));
            }
            TraceEvent::Complete { at } => out.push_str(&format!("complete,{at},{at},,,\n")),
            TraceEvent::Abort { at } => out.push_str(&format!("abort,{at},{at},,,\n")),
        }
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_has_row_per_event() {
        let events = vec![
            TraceEvent::Segment {
                from: 0.0,
                to: 10.0,
                speed: 1,
            },
            TraceEvent::Fault {
                at: 5.0,
                processor: 0,
            },
            TraceEvent::Checkpoint {
                kind: CheckpointKind::CompareStore,
                from: 10.0,
                to: 32.0,
                position: 20.0,
                mismatch: true,
            },
            TraceEvent::Rollback {
                from: 32.0,
                to: 32.0,
                to_position: 0.0,
            },
            TraceEvent::SpeedChange {
                at: 32.0,
                from: 1,
                to: 0,
            },
            TraceEvent::Abort { at: 40.0 },
        ];
        let csv = events_to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), events.len() + 1);
        assert!(lines[1].starts_with("segment,0,10"));
        assert!(lines[2].contains("proc0"));
        assert!(lines[3].contains("cscp") && lines[3].contains("mismatch"));
        assert!(lines[5].contains("f1->f0"));
    }
}
