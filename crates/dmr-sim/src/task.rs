//! Task specification.

/// A real-time task instance to be executed under fault tolerance.
///
/// Following the paper's normalization, `work_cycles` (`N`) is the
/// worst-case number of CPU cycles at the *minimum* processor speed
/// (`f1 = 1`), so at speed 1 the fault- and checkpoint-free execution time
/// equals `N` time units. `deadline` (`D`) is expressed in the same
/// normalized time units.
///
/// # Examples
///
/// ```
/// use eacp_sim::TaskSpec;
/// let task = TaskSpec::new(7600.0, 10_000.0);
/// assert!((task.utilization_at(1.0) - 0.76).abs() < 1e-12);
/// assert!((task.utilization_at(2.0) - 0.38).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSpec {
    /// Worst-case work in cycles at the minimum speed (`N`).
    pub work_cycles: f64,
    /// Relative deadline in normalized time units (`D`).
    pub deadline: f64,
}

impl TaskSpec {
    /// Creates a task specification.
    ///
    /// # Panics
    ///
    /// Panics unless `work_cycles > 0` and `deadline > 0` (both finite).
    pub fn new(work_cycles: f64, deadline: f64) -> Self {
        assert!(
            work_cycles > 0.0 && work_cycles.is_finite(),
            "work_cycles must be positive and finite"
        );
        assert!(
            deadline > 0.0 && deadline.is_finite(),
            "deadline must be positive and finite"
        );
        Self {
            work_cycles,
            deadline,
        }
    }

    /// Creates the task the paper's tables use: `N = U · f · D`, where `f`
    /// is the speed the utilization is quoted at (1 for Tables 1/3, 2 for
    /// Tables 2/4) and `D` is the deadline.
    ///
    /// # Panics
    ///
    /// Panics unless all arguments are positive and finite.
    pub fn from_utilization(utilization: f64, speed: f64, deadline: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization.is_finite(),
            "utilization must be positive and finite"
        );
        assert!(
            speed > 0.0 && speed.is_finite(),
            "speed must be positive and finite"
        );
        Self::new(utilization * speed * deadline, deadline)
    }

    /// Task utilization `N / (f · D)` when executed at speed `f`.
    pub fn utilization_at(&self, speed: f64) -> f64 {
        self.work_cycles / (speed * self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_utilization_round_trips() {
        let t = TaskSpec::from_utilization(0.76, 1.0, 10_000.0);
        assert_eq!(t.work_cycles, 7600.0);
        let t2 = TaskSpec::from_utilization(0.76, 2.0, 10_000.0);
        assert_eq!(t2.work_cycles, 15_200.0);
    }

    #[test]
    #[should_panic(expected = "work_cycles")]
    fn rejects_zero_work() {
        TaskSpec::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_negative_deadline() {
        TaskSpec::new(1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_bad_utilization() {
        TaskSpec::from_utilization(f64::INFINITY, 1.0, 1.0);
    }
}
