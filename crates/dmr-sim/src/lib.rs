//! Discrete-event simulator for double-modular-redundancy (DMR) task
//! execution with checkpointing and dynamic voltage scaling.
//!
//! This crate is the execution substrate of the EACP workspace: it owns the
//! *mechanism* of DMR checkpointed execution, while checkpoint *policies*
//! (when to place which checkpoint, at which speed) live in `eacp-core` and
//! are plugged in through the [`Policy`] trait.
//!
//! # Execution model
//!
//! A task of `N` work cycles runs simultaneously on two processors. Faults
//! arrive from an [`eacp_faults::FaultProcess`]; a fault makes the two
//! processors' states diverge until a rollback re-synchronizes them. Three
//! checkpoint operations exist (paper nomenclature):
//!
//! * **SCP** ([`CheckpointKind::Store`]) — snapshot both states; costs
//!   `ts` cycles; detects nothing.
//! * **CCP** ([`CheckpointKind::Compare`]) — compare the two states; costs
//!   `tcp` cycles; detects divergence but stores nothing.
//! * **CSCP** ([`CheckpointKind::CompareStore`]) — compare and store;
//!   costs `ts + tcp` cycles; on agreement it *commits* (rollback can never
//!   move before it).
//!
//! On a detected mismatch the pair rolls back to the **most recent store
//! whose snapshot was taken with identical states** — for the SCP scheme
//! that is the newest clean SCP (paper Fig. 1), for the CCP scheme it
//! degenerates to the enclosing CSCP (paper Fig. 5), and for plain CSCP
//! checkpointing it is the previous CSCP.
//!
//! Faults may also strike *during* checkpoint operations and rollbacks; a
//! snapshot is taken at the instant an operation begins, so a fault landing
//! mid-operation corrupts the running state but not the snapshot.
//!
//! # Quick example
//!
//! ```
//! use eacp_sim::{
//!     CheckpointCosts, CheckpointKind, Directive, Executor, PlanContext, Policy,
//!     Scenario, TaskSpec,
//! };
//! use eacp_energy::DvsConfig;
//! use eacp_faults::DeterministicFaults;
//!
//! /// Fixed-interval CSCP checkpointing at the slow speed.
//! struct Fixed {
//!     interval: f64,
//! }
//!
//! impl Policy for Fixed {
//!     fn name(&self) -> &'static str {
//!         "fixed"
//!     }
//!     fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
//!         Directive::run(0, self.interval, CheckpointKind::CompareStore)
//!     }
//! }
//!
//! let scenario = Scenario::new(
//!     TaskSpec::new(1000.0, 2000.0),
//!     CheckpointCosts::new(2.0, 20.0, 0.0),
//!     DvsConfig::paper_default(),
//! );
//! let mut policy = Fixed { interval: 100.0 };
//! let mut faults = DeterministicFaults::none();
//! let outcome = Executor::new(&scenario).run(&mut policy, &mut faults);
//! assert!(outcome.timely);
//! // 10 segments of 100 cycles at f1 plus 10 CSCPs of 22 cycles.
//! assert!((outcome.finish_time - (1000.0 + 220.0)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod engine;
mod montecarlo;
pub mod observe;
mod outcome;
mod policy;
mod scenario;
mod task;
pub mod trace;

pub use costs::CheckpointCosts;
pub use engine::{Executor, ExecutorOptions, ExecutorScratch};
pub use montecarlo::{replication_seed, MonteCarlo, Summary};
pub use observe::{NoopObserver, Observer};
pub use outcome::{Anomaly, RunOutcome};
pub use policy::{CheckpointKind, CommitWindow, Directive, PlanContext, Policy};
pub use scenario::Scenario;
pub use task::TaskSpec;
pub use trace::{events_to_csv, TraceEvent, TraceRecorder};
