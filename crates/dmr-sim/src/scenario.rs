//! A complete simulation scenario.

use crate::costs::CheckpointCosts;
use crate::task::TaskSpec;
use eacp_energy::DvsConfig;

/// Everything the executor needs apart from the policy and the fault
/// stream: the task, the checkpoint cost model, the DVS configuration and
/// the degree of modular redundancy.
///
/// # Examples
///
/// ```
/// use eacp_sim::{CheckpointCosts, Scenario, TaskSpec};
/// use eacp_energy::DvsConfig;
///
/// let s = Scenario::new(
///     TaskSpec::new(7600.0, 10_000.0),
///     CheckpointCosts::paper_scp_variant(),
///     DvsConfig::paper_default(),
/// );
/// assert_eq!(s.processors, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The task to execute.
    pub task: TaskSpec,
    /// Checkpoint operation costs (cycles).
    pub costs: CheckpointCosts,
    /// Available speed levels.
    pub dvs: DvsConfig,
    /// Number of redundant processors charged for energy (2 = DMR).
    pub processors: u32,
}

impl Scenario {
    /// Creates a DMR (two-processor) scenario.
    pub fn new(task: TaskSpec, costs: CheckpointCosts, dvs: DvsConfig) -> Self {
        Self {
            task,
            costs,
            dvs,
            processors: 2,
        }
    }

    /// Overrides the number of redundant processors.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn with_processors(mut self, processors: u32) -> Self {
        assert!(processors > 0, "at least one processor is required");
        self.processors = processors;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmr_by_default_and_override() {
        let s = Scenario::new(
            TaskSpec::new(100.0, 200.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        assert_eq!(s.processors, 2);
        let s3 = s.clone().with_processors(3);
        assert_eq!(s3.processors, 3);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn rejects_zero_processors() {
        let s = Scenario::new(
            TaskSpec::new(100.0, 200.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let _ = s.with_processors(0);
    }
}
