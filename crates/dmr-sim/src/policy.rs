//! The policy interface: how checkpointing schemes drive the executor.

use crate::costs::CheckpointCosts;
use eacp_energy::DvsConfig;

/// The three checkpoint operations of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CheckpointKind {
    /// SCP — store both processors' states without comparing (`ts` cycles).
    Store,
    /// CCP — compare the states without storing (`tcp` cycles).
    Compare,
    /// CSCP — compare and store (`ts + tcp` cycles); commits on agreement.
    CompareStore,
}

impl CheckpointKind {
    /// Whether this operation compares the two processors' states
    /// (i.e. can detect a fault).
    #[inline]
    pub fn compares(self) -> bool {
        matches!(self, CheckpointKind::Compare | CheckpointKind::CompareStore)
    }

    /// Whether this operation stores a snapshot (i.e. creates a rollback
    /// target).
    #[inline]
    pub fn stores(self) -> bool {
        matches!(self, CheckpointKind::Store | CheckpointKind::CompareStore)
    }
}

/// Read-only view of the execution state offered to a [`Policy`] at each
/// planning point.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// Current wall-clock time.
    pub now: f64,
    /// Useful work already executed since the last rollback target, plus all
    /// committed work — i.e. the current position in the task, in cycles.
    pub position_cycles: f64,
    /// Total task work in cycles (`N`).
    pub work_cycles: f64,
    /// Absolute deadline (`D`).
    pub deadline: f64,
    /// Index of the current speed level (into [`PlanContext::dvs`]).
    pub speed: usize,
    /// Checkpoint cost model (cycles).
    pub costs: &'a CheckpointCosts,
    /// Speed levels available to [`Directive::run`].
    pub dvs: &'a DvsConfig,
}

impl PlanContext<'_> {
    /// Remaining useful work in cycles (`Rc` in the paper's DVS notation).
    pub fn remaining_cycles(&self) -> f64 {
        (self.work_cycles - self.position_cycles).max(0.0)
    }

    /// Time left before the deadline (`Rd`); can be negative when already
    /// past it.
    pub fn time_left(&self) -> f64 {
        self.deadline - self.now
    }

    /// Remaining execution time `Rt = Rc / f` at speed level `speed`.
    pub fn remaining_time_at(&self, speed: usize) -> f64 {
        self.remaining_cycles() / self.dvs.level(speed).frequency
    }
}

/// What the policy wants the executor to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Directive {
    /// Execute `compute_time` wall-clock units of useful computation at
    /// speed level `speed`, then perform the `checkpoint` operation.
    ///
    /// The executor clamps `compute_time` so the segment never overshoots
    /// the end of the task.
    Run {
        /// Speed level index for this segment (and its checkpoint).
        speed: usize,
        /// Useful computation time (wall-clock units, at `speed`).
        compute_time: f64,
        /// Checkpoint operation to perform at the end of the segment.
        checkpoint: CheckpointKind,
    },
    /// Give up: the deadline can no longer be met ("break with task
    /// failure" in the paper's procedures).
    Abort,
}

impl Directive {
    /// Convenience constructor for [`Directive::Run`].
    pub fn run(speed: usize, compute_time: f64, checkpoint: CheckpointKind) -> Self {
        Directive::Run {
            speed,
            compute_time,
            checkpoint,
        }
    }
}

/// A fixed stretch of a policy's committed schedule, ending at its next
/// commit: `subs` segments of `compute_time` at `speed`, each followed by
/// a `sub_kind` checkpoint, then one final segment followed by a
/// [`CheckpointKind::CompareStore`].
///
/// Returned by [`Policy::commit_window`]; see that method for the
/// contract a policy signs by publishing one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitWindow {
    /// Speed level of every segment in the window.
    pub speed: usize,
    /// Useful computation time of every segment in the window.
    pub compute_time: f64,
    /// Checkpoint kind after each of the first `subs` segments. Must be
    /// [`CheckpointKind::Store`] or [`CheckpointKind::Compare`] — the
    /// window's whole point is that only its final operation commits.
    pub sub_kind: CheckpointKind,
    /// Number of `sub_kind` segments before the final commit segment
    /// (may be zero: the very next segment commits).
    pub subs: u32,
}

/// A checkpointing scheme: decides segment lengths, checkpoint kinds and
/// processor speed, and reacts to detected faults.
///
/// Policies are stateful and single-run; Monte-Carlo experiments construct a
/// fresh policy per replication through a factory closure.
pub trait Policy {
    /// Short scheme name used in reports (e.g. `"A_D_S"`).
    fn name(&self) -> &str;

    /// Called at every planning point: task start, after every completed
    /// checkpoint, and after every rollback.
    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive;

    /// Called after every *comparing* checkpoint (CCP / CSCP) completes.
    ///
    /// On a mismatch the executor has already rolled back when this runs, so
    /// `ctx` reflects the post-rollback position — matching the paper's
    /// procedures, which recompute the interval *after* the rollback.
    fn on_compare(&mut self, ctx: &PlanContext<'_>, kind: CheckpointKind, mismatch: bool) {
        let _ = (ctx, kind, mismatch);
    }

    /// The policy's committed schedule from `ctx` up to its next commit,
    /// if it is fixed in advance — the executor's licence to run the whole
    /// window in its fault-free fast path.
    ///
    /// Returning `Some(w)` is a promise that, starting from `ctx`, as long
    /// as no fault is delivered, no comparison mismatches and every
    /// segment runs its full `compute_time` (no task-end clamping,
    /// deadline stop or op-budget stop — the executor verifies all of
    /// these with conservative bounds before taking the window):
    ///
    /// 1. the next `w.subs + 1` calls to [`Policy::plan`] would return
    ///    exactly `Run { speed, compute_time, sub_kind }` for the first
    ///    `w.subs` and `Run { speed, compute_time, CompareStore }` for
    ///    the last;
    /// 2. clean-compare [`Policy::on_compare`] notifications during the
    ///    window do not change the policy's observable behaviour; and
    /// 3. one [`Policy::on_commit_window_executed`] call afterwards
    ///    leaves the policy in the state those `plan` calls would have.
    ///
    /// The method takes `&mut self` so a policy may materialize internal
    /// planning state, but any such mutation must be exactly the state a
    /// subsequent `plan` call would have computed: the executor is free
    /// to reject the window and fall back to per-segment planning.
    ///
    /// The default declines, which is always sound (merely slower).
    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        let _ = ctx;
        None
    }

    /// Notification that the executor executed a full window returned by
    /// [`Policy::commit_window`], ending in a clean commit.
    fn on_commit_window_executed(&mut self) {}
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> Directive {
        (**self).plan(ctx)
    }

    fn on_compare(&mut self, ctx: &PlanContext<'_>, kind: CheckpointKind, mismatch: bool) {
        (**self).on_compare(ctx, kind, mismatch)
    }

    fn commit_window(&mut self, ctx: &PlanContext<'_>) -> Option<CommitWindow> {
        (**self).commit_window(ctx)
    }

    fn on_commit_window_executed(&mut self) {
        (**self).on_commit_window_executed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(CheckpointKind::Compare.compares());
        assert!(!CheckpointKind::Compare.stores());
        assert!(CheckpointKind::Store.stores());
        assert!(!CheckpointKind::Store.compares());
        assert!(CheckpointKind::CompareStore.compares());
        assert!(CheckpointKind::CompareStore.stores());
    }

    #[test]
    fn context_arithmetic() {
        let costs = CheckpointCosts::paper_scp_variant();
        let dvs = DvsConfig::paper_default();
        let ctx = PlanContext {
            now: 100.0,
            position_cycles: 300.0,
            work_cycles: 1000.0,
            deadline: 900.0,
            speed: 0,
            costs: &costs,
            dvs: &dvs,
        };
        assert_eq!(ctx.remaining_cycles(), 700.0);
        assert_eq!(ctx.time_left(), 800.0);
        assert_eq!(ctx.remaining_time_at(0), 700.0);
        assert_eq!(ctx.remaining_time_at(1), 350.0);
    }

    #[test]
    fn directive_run_constructor() {
        let d = Directive::run(1, 5.0, CheckpointKind::Store);
        assert_eq!(
            d,
            Directive::Run {
                speed: 1,
                compute_time: 5.0,
                checkpoint: CheckpointKind::Store
            }
        );
    }
}
