//! Result of one simulated task execution.

/// Why the executor gave up on a run without a normal completion or a
/// policy-requested abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Anomaly {
    /// The policy kept returning zero-progress directives.
    NoProgress,
    /// The operation budget (safety cap) was exhausted.
    OpBudgetExhausted,
    /// The policy requested a speed level outside the DVS configuration.
    InvalidSpeed,
    /// The policy requested a negative or non-finite compute time.
    InvalidComputeTime,
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Anomaly::NoProgress => "policy made no progress",
            Anomaly::OpBudgetExhausted => "operation budget exhausted",
            Anomaly::InvalidSpeed => "policy requested an invalid speed level",
            Anomaly::InvalidComputeTime => "policy requested an invalid compute time",
        };
        f.write_str(s)
    }
}

/// Everything measured about one run.
///
/// `energy` is total consumed energy (`processors · Σ V² · cycles`,
/// including checkpoint and rollback cycles). Runs that can no longer be
/// timely are stopped at the first operation boundary past the deadline, so
/// their energy is "energy spent by ≈`D`"; the paper's per-cell energy
/// averages only timely runs (hence `NaN` for cells with `P = 0`), which is
/// what [`crate::MonteCarlo`] reports as `energy_timely`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunOutcome {
    /// The task executed all its work and the final comparison passed.
    pub completed: bool,
    /// Completion was at or before the deadline.
    pub timely: bool,
    /// Wall-clock time at which the run ended (completion, abort, or
    /// deadline cut-off).
    pub finish_time: f64,
    /// Total energy consumed.
    pub energy: f64,
    /// Faults injected (and absorbed into state divergence) during the run.
    pub faults: u32,
    /// Rollbacks performed (mismatches detected).
    pub rollbacks: u32,
    /// SCP (store-only) checkpoints performed.
    pub store_checkpoints: u32,
    /// CCP (compare-only) checkpoints performed.
    pub compare_checkpoints: u32,
    /// CSCP (compare-and-store) checkpoints performed.
    pub compare_store_checkpoints: u32,
    /// Computation segments executed.
    pub segments: u32,
    /// Speed switches performed.
    pub speed_switches: u64,
    /// Per-processor cycles executed at the fastest DVS level.
    pub cycles_at_fastest: f64,
    /// Per-processor cycles executed in total (all levels).
    pub total_cycles: f64,
    /// The policy explicitly aborted ("break with task failure").
    pub aborted: bool,
    /// Abnormal termination reason, if any (indicates a policy bug; never
    /// set by the policies shipped in `eacp-core`).
    pub anomaly: Option<Anomaly>,
}

impl RunOutcome {
    /// Total number of checkpoints of all kinds.
    pub fn checkpoints(&self) -> u32 {
        self.store_checkpoints + self.compare_checkpoints + self.compare_store_checkpoints
    }

    /// Fraction of executed cycles spent at the fastest level
    /// (0 when nothing ran).
    pub fn fast_fraction(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.cycles_at_fastest / self.total_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            completed: true,
            timely: true,
            finish_time: 10.0,
            energy: 100.0,
            faults: 1,
            rollbacks: 1,
            store_checkpoints: 3,
            compare_checkpoints: 2,
            compare_store_checkpoints: 4,
            segments: 9,
            speed_switches: 0,
            cycles_at_fastest: 25.0,
            total_cycles: 100.0,
            aborted: false,
            anomaly: None,
        }
    }

    #[test]
    fn checkpoint_total_and_fast_fraction() {
        let o = outcome();
        assert_eq!(o.checkpoints(), 9);
        assert_eq!(o.fast_fraction(), 0.25);
    }

    #[test]
    fn fast_fraction_of_empty_run_is_zero() {
        let mut o = outcome();
        o.total_cycles = 0.0;
        o.cycles_at_fastest = 0.0;
        assert_eq!(o.fast_fraction(), 0.0);
    }

    #[test]
    fn anomaly_display_is_nonempty() {
        for a in [
            Anomaly::NoProgress,
            Anomaly::OpBudgetExhausted,
            Anomaly::InvalidSpeed,
            Anomaly::InvalidComputeTime,
        ] {
            assert!(!a.to_string().is_empty());
        }
    }
}

impl std::fmt::Display for RunOutcome {
    /// One-line human-readable summary, e.g.
    /// `timely in 8925.4 (E=47408, 9 faults, 7 rollbacks, 183 checkpoints)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = if let Some(a) = self.anomaly {
            return write!(f, "anomalous run at {:.1}: {a}", self.finish_time);
        } else if self.timely {
            "timely"
        } else if self.completed {
            "late"
        } else if self.aborted {
            "aborted"
        } else {
            "cut off"
        };
        write!(
            f,
            "{status} in {:.1} (E={:.0}, {} faults, {} rollbacks, {} checkpoints)",
            self.finish_time,
            self.energy,
            self.faults,
            self.rollbacks,
            self.checkpoints()
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    fn base() -> RunOutcome {
        RunOutcome {
            completed: true,
            timely: true,
            finish_time: 100.5,
            energy: 4020.0,
            faults: 2,
            rollbacks: 1,
            store_checkpoints: 5,
            compare_checkpoints: 0,
            compare_store_checkpoints: 3,
            segments: 8,
            speed_switches: 1,
            cycles_at_fastest: 0.0,
            total_cycles: 100.0,
            aborted: false,
            anomaly: None,
        }
    }

    #[test]
    fn display_statuses() {
        let mut o = base();
        assert!(o.to_string().starts_with("timely in 100.5"));
        o.timely = false;
        assert!(o.to_string().starts_with("late"));
        o.completed = false;
        o.aborted = true;
        assert!(o.to_string().starts_with("aborted"));
        o.aborted = false;
        assert!(o.to_string().starts_with("cut off"));
        o.anomaly = Some(Anomaly::NoProgress);
        assert!(o.to_string().contains("anomalous"));
    }
}
