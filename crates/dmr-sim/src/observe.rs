//! Streaming observation of executions: the [`Observer`] trait.
//!
//! Before the `eacp-exec` redesign the engine had two entry points —
//! `run` (fast, blind) and `run_traced` (slow, recording) — and
//! Monte-Carlo drivers could not see inside a replication at all. An
//! [`Observer`] unifies them: the engine reports every event through the
//! trait, tracing is just the [`TraceRecorder`] observer, and the
//! [`NoopObserver`]'s empty inlined methods let the optimizer compile the
//! observed path down to the old blind fast path.
//!
//! # Event vocabulary
//!
//! | Callback | When |
//! |---|---|
//! | [`Observer::on_replication_start`] | a Monte-Carlo replication begins (runner-level) |
//! | [`Observer::on_replication_end`] | a replication's [`RunOutcome`] is final (runner-level) |
//! | [`Observer::on_event`] | every engine [`TraceEvent`]: computation segment, checkpoint (store / compare / compare-and-store, with mismatch verdict), fault arrival, rollback, speed change, completion, abort |
//! | [`Observer::on_deadline_miss`] | the run first passes its deadline (at most once per run) |
//! | [`Observer::on_energy_sample`] | cumulative energy after each checkpoint operation |
//!
//! The engine emits `on_event` / `on_deadline_miss` / `on_energy_sample`;
//! replication brackets are emitted by Monte-Carlo runners (`eacp-exec`).

use crate::outcome::RunOutcome;
use crate::trace::{TraceEvent, TraceRecorder};

/// Receives a stream of execution events.
///
/// All methods have empty default bodies, so an observer implements only
/// what it cares about. Observers are driven from one thread at a time:
/// parallel runners either give each worker its own observer or fall back
/// to a sequential schedule when a shared observer is attached.
pub trait Observer {
    /// A Monte-Carlo replication is about to run with the given derived
    /// seed (see [`crate::replication_seed`]).
    fn on_replication_start(&mut self, replication: u64, seed: u64) {
        let _ = (replication, seed);
    }

    /// A replication finished with this outcome.
    fn on_replication_end(&mut self, replication: u64, outcome: &RunOutcome) {
        let _ = (replication, outcome);
    }

    /// An engine event occurred (segment, checkpoint, fault, rollback,
    /// speed change, completion, abort).
    fn on_event(&mut self, event: &TraceEvent) {
        let _ = event;
    }

    /// The run's wall-clock time first passed the task deadline.
    fn on_deadline_miss(&mut self, at: f64) {
        let _ = at;
    }

    /// Cumulative consumed energy after a checkpoint operation completed.
    fn on_energy_sample(&mut self, at: f64, cumulative_energy: f64) {
        let _ = (at, cumulative_energy);
    }
}

/// The do-nothing observer: the fast path.
///
/// Every callback is an empty default method, so monomorphized engine code
/// using `NoopObserver` optimizes to exactly the unobserved execution loop
/// (guarded by the `observer_overhead` bench in `eacp-bench`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Tracing is just one observer: the recorder keeps the Fig. 1/Fig. 5
/// timeline vocabulary (deadline misses and energy samples are runner-level
/// telemetry, not timeline rows, and are not recorded).
impl Observer for TraceRecorder {
    fn on_event(&mut self, event: &TraceEvent) {
        self.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_methods_are_callable_noops() {
        struct OnlyFaults(u32);
        impl Observer for OnlyFaults {
            fn on_event(&mut self, event: &TraceEvent) {
                if matches!(event, TraceEvent::Fault { .. }) {
                    self.0 += 1;
                }
            }
        }
        let mut o = OnlyFaults(0);
        o.on_replication_start(0, 1);
        o.on_deadline_miss(5.0);
        o.on_energy_sample(5.0, 10.0);
        o.on_event(&TraceEvent::Fault {
            at: 1.0,
            processor: 0,
        });
        o.on_event(&TraceEvent::Complete { at: 2.0 });
        assert_eq!(o.0, 1);
    }

    #[test]
    fn trace_recorder_records_events_only() {
        let mut rec = TraceRecorder::new();
        rec.on_event(&TraceEvent::Complete { at: 3.0 });
        rec.on_deadline_miss(1.0);
        rec.on_energy_sample(1.0, 2.0);
        assert_eq!(rec.len(), 1);
    }
}
