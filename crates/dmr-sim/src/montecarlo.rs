//! Monte-Carlo replication vocabulary: configuration ([`MonteCarlo`]),
//! the per-replication seeding contract ([`replication_seed`]) and the
//! mergeable aggregate ([`Summary`]).
//!
//! The paper: "Due to the stochastic nature of the fault arrival process,
//! the experiment is repeated 10,000 times for the same task and the results
//! are averaged over these runs."
//!
//! Execution itself lives in `eacp-exec`: its `Job`/`Runner` API loops the
//! engine over replications seeded by [`replication_seed`] and reduces
//! [`RunOutcome`](crate::outcome::RunOutcome)s into a [`Summary`].

use eacp_numerics::{wilson_interval, OnlineStats};

/// Monte-Carlo experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of independent replications (the paper uses 10,000).
    pub replications: u64,
    /// Base seed; replication `i` derives its own seed deterministically,
    /// so results are reproducible regardless of thread count.
    pub base_seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl MonteCarlo {
    /// Creates a runner with the given replication count, a fixed default
    /// seed and automatic thread count.
    pub fn new(replications: u64) -> Self {
        Self {
            replications,
            base_seed: 0xEAC9_2006,
            threads: 0,
        }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the thread count (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Derives the per-replication seed from the base seed (SplitMix64 mixing,
/// so neighbouring replication indices yield decorrelated streams).
///
/// This is the seeding contract of the workspace: every Monte-Carlo driver
/// (`eacp-exec`'s `Job`/`Runner`, local or queued) derives replication
/// `rep`'s seed this way, so replication outcomes are identical no matter
/// which driver, thread count, worker pool or shard ran them.
#[inline]
pub fn replication_seed(base_seed: u64, replication: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(replication.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregated Monte-Carlo results.
///
/// `energy_timely` matches the paper's `E` (mean over timely completions —
/// `NaN` when no run was timely, exactly as the paper's Tables 1(b)/3(b)
/// report for `U = 1.00`); `p_timely` matches the paper's `P`.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total replications.
    pub replications: u64,
    /// Replications that completed at or before the deadline.
    pub timely: u64,
    /// Replications that completed at all (possibly late).
    pub completed: u64,
    /// Replications the policy aborted.
    pub aborted: u64,
    /// Replications with executor anomalies (policy bugs; must be 0).
    pub anomalies: u64,
    /// Energy over timely replications (the paper's `E`).
    pub energy_timely: OnlineStats,
    /// Energy over all replications (untimely runs charged up to ≈`D`).
    pub energy_all: OnlineStats,
    /// Completion time over timely replications.
    pub finish_timely: OnlineStats,
    /// Fault count per replication.
    pub faults: OnlineStats,
    /// Rollback count per replication.
    pub rollbacks: OnlineStats,
    /// Checkpoint count (all kinds) per replication.
    pub checkpoints: OnlineStats,
    /// Fraction of cycles executed at the fastest speed, per replication.
    pub fast_fraction: OnlineStats,
}

impl Summary {
    /// An all-zero summary: the identity element of [`Summary::merge`].
    pub fn empty() -> Self {
        Self {
            replications: 0,
            timely: 0,
            completed: 0,
            aborted: 0,
            anomalies: 0,
            energy_timely: OnlineStats::new(),
            energy_all: OnlineStats::new(),
            finish_timely: OnlineStats::new(),
            faults: OnlineStats::new(),
            rollbacks: OnlineStats::new(),
            checkpoints: OnlineStats::new(),
            fast_fraction: OnlineStats::new(),
        }
    }

    /// Folds one replication outcome into the aggregate.
    pub fn absorb(&mut self, out: &crate::outcome::RunOutcome) {
        self.replications += 1;
        if out.timely {
            self.timely += 1;
            self.energy_timely.push(out.energy);
            self.finish_timely.push(out.finish_time);
        }
        if out.completed {
            self.completed += 1;
        }
        if out.aborted {
            self.aborted += 1;
        }
        if out.anomaly.is_some() {
            self.anomalies += 1;
        }
        self.energy_all.push(out.energy);
        self.faults.push(out.faults as f64);
        self.rollbacks.push(out.rollbacks as f64);
        self.checkpoints.push(out.checkpoints() as f64);
        self.fast_fraction.push(out.fast_fraction());
    }

    /// Merges another partial aggregate into this one (parallel / sharded
    /// reduction).
    ///
    /// Counts, minima and maxima are exactly order-invariant. The floating-
    /// point moments (means, variances) are order-invariant up to last-ulp
    /// rounding of the underlying [`OnlineStats::merge`]; drivers that need
    /// bit-identical results across thread counts must merge partials in a
    /// canonical order over a partition that does not depend on the thread
    /// count — which is exactly what `eacp-exec`'s `LocalRunner` does with
    /// its fixed-size replication blocks.
    pub fn merge(&mut self, other: &Summary) {
        self.replications += other.replications;
        self.timely += other.timely;
        self.completed += other.completed;
        self.aborted += other.aborted;
        self.anomalies += other.anomalies;
        self.energy_timely.merge(&other.energy_timely);
        self.energy_all.merge(&other.energy_all);
        self.finish_timely.merge(&other.finish_timely);
        self.faults.merge(&other.faults);
        self.rollbacks.merge(&other.rollbacks);
        self.checkpoints.merge(&other.checkpoints);
        self.fast_fraction.merge(&other.fast_fraction);
    }

    /// Probability of timely completion (the paper's `P`).
    pub fn p_timely(&self) -> f64 {
        if self.replications == 0 {
            f64::NAN
        } else {
            self.timely as f64 / self.replications as f64
        }
    }

    /// Wilson confidence interval on `P` at `z` standard normal quantiles.
    pub fn p_timely_ci(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.timely, self.replications, z)
    }

    /// Mean energy over timely runs (the paper's `E`; `NaN` when `P = 0`).
    pub fn mean_energy_timely(&self) -> f64 {
        self.energy_timely.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CheckpointCosts;
    use crate::engine::{Executor, ExecutorOptions};
    use crate::policy::{CheckpointKind, Directive, PlanContext, Policy};
    use crate::scenario::Scenario;
    use crate::task::TaskSpec;
    use eacp_energy::DvsConfig;
    use eacp_faults::PoissonProcess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct FixedCscp {
        interval: f64,
    }

    impl Policy for FixedCscp {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
            Directive::run(0, self.interval, CheckpointKind::CompareStore)
        }
    }

    fn scenario() -> Scenario {
        Scenario::new(
            TaskSpec::new(1000.0, 2000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        )
    }

    /// Sequential replication loop on the engine API under the seeding
    /// contract — the Summary fixtures for the aggregate tests below.
    fn run_reps(s: &Scenario, mc: &MonteCarlo, lambda: f64) -> Summary {
        let executor = Executor::new(s).with_options(ExecutorOptions::default());
        let mut sum = Summary::empty();
        for rep in 0..mc.replications {
            let seed = replication_seed(mc.base_seed, rep);
            let mut policy = FixedCscp { interval: 100.0 };
            let mut faults = PoissonProcess::new(lambda, StdRng::seed_from_u64(seed));
            sum.absorb(&executor.run(&mut policy, &mut faults));
        }
        sum
    }

    #[test]
    fn fault_free_aggregate_is_deterministic() {
        let s = scenario();
        let sum = run_reps(&s, &MonteCarlo::new(100), 0.0);
        assert_eq!(sum.replications, 100);
        assert_eq!(sum.timely, 100);
        assert_eq!(sum.p_timely(), 1.0);
        assert_eq!(sum.anomalies, 0);
        // All runs identical: zero variance.
        assert_eq!(sum.energy_timely.population_variance(), 0.0);
        assert!((sum.finish_timely.mean() - 1220.0).abs() < 1e-9);
    }

    #[test]
    fn fault_rate_reduces_timeliness() {
        let s = Scenario::new(
            TaskSpec::new(1000.0, 1400.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let mc = MonteCarlo::new(2000).with_seed(7);
        let low = run_reps(&s, &mc, 1e-5);
        let high = run_reps(&s, &mc, 2e-3);
        assert!(low.p_timely() > high.p_timely());
        assert!(low.faults.mean() < high.faults.mean());
        // Faulty runs do strictly more work on average.
        assert!(high.energy_all.mean() > 0.0);
    }

    #[test]
    fn p_ci_brackets_p() {
        let s = scenario();
        let sum = run_reps(&s, &MonteCarlo::new(300).with_seed(3), 1e-3);
        let p = sum.p_timely();
        let (lo, hi) = sum.p_timely_ci(1.96);
        assert!(lo <= p && p <= hi);
    }

    #[test]
    fn nan_energy_when_nothing_timely() {
        // Deadline impossible to meet.
        let s = Scenario::new(
            TaskSpec::new(1000.0, 500.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let sum = run_reps(&s, &MonteCarlo::new(50), 0.0);
        assert_eq!(sum.timely, 0);
        assert_eq!(sum.p_timely(), 0.0);
        assert!(sum.mean_energy_timely().is_nan(), "paper-style NaN cell");
        // Unconditional energy is still defined.
        assert!(sum.energy_all.mean() > 0.0);
    }

    #[test]
    fn replication_seed_decorrelates() {
        let s0 = replication_seed(1, 0);
        let s1 = replication_seed(1, 1);
        let s2 = replication_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }
}
