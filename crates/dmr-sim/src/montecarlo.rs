//! Multi-threaded Monte-Carlo replication of task executions.
//!
//! The paper: "Due to the stochastic nature of the fault arrival process,
//! the experiment is repeated 10,000 times for the same task and the results
//! are averaged over these runs."

use crate::engine::{Executor, ExecutorOptions};
use crate::policy::Policy;
use crate::scenario::Scenario;
use eacp_faults::FaultProcess;
use eacp_numerics::{wilson_interval, OnlineStats};

/// Monte-Carlo experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of independent replications (the paper uses 10,000).
    pub replications: u64,
    /// Base seed; replication `i` derives its own seed deterministically,
    /// so results are reproducible regardless of thread count.
    pub base_seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl MonteCarlo {
    /// Creates a runner with the given replication count, a fixed default
    /// seed and automatic thread count.
    pub fn new(replications: u64) -> Self {
        Self {
            replications,
            base_seed: 0xEAC9_2006,
            threads: 0,
        }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the thread count (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the experiment: for each replication a fresh policy and fault
    /// stream are built from the factories (each receives the replication's
    /// derived seed) and one task execution is simulated.
    ///
    /// # Panics
    ///
    /// Panics if `replications == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "use eacp-exec's Job/Runner API (Job::from_parts + LocalRunner), \
                which keeps bit-identical per-replication seeding and adds \
                observers and canonical-order merging"
    )]
    pub fn run<P, Q, FP, FQ>(
        &self,
        scenario: &Scenario,
        options: ExecutorOptions,
        policy_factory: FP,
        fault_factory: FQ,
    ) -> Summary
    where
        P: Policy,
        Q: FaultProcess,
        FP: Fn(u64) -> P + Sync,
        FQ: Fn(u64) -> Q + Sync,
    {
        assert!(self.replications > 0, "replications must be positive");
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let threads = threads.min(self.replications as usize).max(1);

        let executor = Executor::new(scenario).with_options(options);
        let chunk = self.replications.div_ceil(threads as u64);
        let mut partials: Vec<Summary> = Vec::with_capacity(threads);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads as u64 {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(self.replications);
                if lo >= hi {
                    break;
                }
                let executor = &executor;
                let policy_factory = &policy_factory;
                let fault_factory = &fault_factory;
                let base_seed = self.base_seed;
                handles.push(scope.spawn(move || {
                    let mut local = Summary::empty();
                    for rep in lo..hi {
                        let seed = replication_seed(base_seed, rep);
                        let mut policy = policy_factory(seed);
                        let mut faults = fault_factory(seed);
                        let out = executor.run(&mut policy, &mut faults);
                        local.absorb(&out);
                    }
                    local
                }));
            }
            for h in handles {
                partials.push(h.join().expect("simulation worker panicked"));
            }
        });

        let mut total = Summary::empty();
        for p in &partials {
            total.merge(p);
        }
        total
    }
}

/// Derives the per-replication seed from the base seed (SplitMix64 mixing,
/// so neighbouring replication indices yield decorrelated streams).
///
/// This is the seeding contract of the workspace: every Monte-Carlo driver
/// (the deprecated [`MonteCarlo::run`] and `eacp-exec`'s `Job`/`Runner`)
/// derives replication `rep`'s seed this way, so replication outcomes are
/// identical no matter which driver, thread count or shard ran them.
pub fn replication_seed(base_seed: u64, replication: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(replication.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregated Monte-Carlo results.
///
/// `energy_timely` matches the paper's `E` (mean over timely completions —
/// `NaN` when no run was timely, exactly as the paper's Tables 1(b)/3(b)
/// report for `U = 1.00`); `p_timely` matches the paper's `P`.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total replications.
    pub replications: u64,
    /// Replications that completed at or before the deadline.
    pub timely: u64,
    /// Replications that completed at all (possibly late).
    pub completed: u64,
    /// Replications the policy aborted.
    pub aborted: u64,
    /// Replications with executor anomalies (policy bugs; must be 0).
    pub anomalies: u64,
    /// Energy over timely replications (the paper's `E`).
    pub energy_timely: OnlineStats,
    /// Energy over all replications (untimely runs charged up to ≈`D`).
    pub energy_all: OnlineStats,
    /// Completion time over timely replications.
    pub finish_timely: OnlineStats,
    /// Fault count per replication.
    pub faults: OnlineStats,
    /// Rollback count per replication.
    pub rollbacks: OnlineStats,
    /// Checkpoint count (all kinds) per replication.
    pub checkpoints: OnlineStats,
    /// Fraction of cycles executed at the fastest speed, per replication.
    pub fast_fraction: OnlineStats,
}

impl Summary {
    /// An all-zero summary: the identity element of [`Summary::merge`].
    pub fn empty() -> Self {
        Self {
            replications: 0,
            timely: 0,
            completed: 0,
            aborted: 0,
            anomalies: 0,
            energy_timely: OnlineStats::new(),
            energy_all: OnlineStats::new(),
            finish_timely: OnlineStats::new(),
            faults: OnlineStats::new(),
            rollbacks: OnlineStats::new(),
            checkpoints: OnlineStats::new(),
            fast_fraction: OnlineStats::new(),
        }
    }

    /// Folds one replication outcome into the aggregate.
    pub fn absorb(&mut self, out: &crate::outcome::RunOutcome) {
        self.replications += 1;
        if out.timely {
            self.timely += 1;
            self.energy_timely.push(out.energy);
            self.finish_timely.push(out.finish_time);
        }
        if out.completed {
            self.completed += 1;
        }
        if out.aborted {
            self.aborted += 1;
        }
        if out.anomaly.is_some() {
            self.anomalies += 1;
        }
        self.energy_all.push(out.energy);
        self.faults.push(out.faults as f64);
        self.rollbacks.push(out.rollbacks as f64);
        self.checkpoints.push(out.checkpoints() as f64);
        self.fast_fraction.push(out.fast_fraction());
    }

    /// Merges another partial aggregate into this one (parallel / sharded
    /// reduction).
    ///
    /// Counts, minima and maxima are exactly order-invariant. The floating-
    /// point moments (means, variances) are order-invariant up to last-ulp
    /// rounding of the underlying [`OnlineStats::merge`]; drivers that need
    /// bit-identical results across thread counts must merge partials in a
    /// canonical order over a partition that does not depend on the thread
    /// count — which is exactly what `eacp-exec`'s `LocalRunner` does with
    /// its fixed-size replication blocks.
    pub fn merge(&mut self, other: &Summary) {
        self.replications += other.replications;
        self.timely += other.timely;
        self.completed += other.completed;
        self.aborted += other.aborted;
        self.anomalies += other.anomalies;
        self.energy_timely.merge(&other.energy_timely);
        self.energy_all.merge(&other.energy_all);
        self.finish_timely.merge(&other.finish_timely);
        self.faults.merge(&other.faults);
        self.rollbacks.merge(&other.rollbacks);
        self.checkpoints.merge(&other.checkpoints);
        self.fast_fraction.merge(&other.fast_fraction);
    }

    /// Probability of timely completion (the paper's `P`).
    pub fn p_timely(&self) -> f64 {
        if self.replications == 0 {
            f64::NAN
        } else {
            self.timely as f64 / self.replications as f64
        }
    }

    /// Wilson confidence interval on `P` at `z` standard normal quantiles.
    pub fn p_timely_ci(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.timely, self.replications, z)
    }

    /// Mean energy over timely runs (the paper's `E`; `NaN` when `P = 0`).
    pub fn mean_energy_timely(&self) -> f64 {
        self.energy_timely.mean()
    }
}

#[cfg(test)]
// The deprecated closure-factory path stays covered until it is removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::costs::CheckpointCosts;
    use crate::policy::{CheckpointKind, Directive, PlanContext};
    use crate::task::TaskSpec;
    use eacp_energy::DvsConfig;
    use eacp_faults::PoissonProcess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct FixedCscp {
        interval: f64,
    }

    impl Policy for FixedCscp {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn plan(&mut self, _ctx: &PlanContext<'_>) -> Directive {
            Directive::run(0, self.interval, CheckpointKind::CompareStore)
        }
    }

    fn scenario() -> Scenario {
        Scenario::new(
            TaskSpec::new(1000.0, 2000.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        )
    }

    #[test]
    fn fault_free_mc_is_deterministic() {
        let s = scenario();
        let mc = MonteCarlo::new(100).with_threads(4);
        let sum = mc.run(
            &s,
            ExecutorOptions::default(),
            |_| FixedCscp { interval: 100.0 },
            |seed| PoissonProcess::new(0.0, StdRng::seed_from_u64(seed)),
        );
        assert_eq!(sum.replications, 100);
        assert_eq!(sum.timely, 100);
        assert_eq!(sum.p_timely(), 1.0);
        assert_eq!(sum.anomalies, 0);
        // All runs identical: zero variance.
        assert_eq!(sum.energy_timely.population_variance(), 0.0);
        assert!((sum.finish_timely.mean() - 1220.0).abs() < 1e-9);
    }

    #[test]
    fn seeded_runs_reproduce_exactly() {
        let s = scenario();
        let run = |threads: usize| {
            MonteCarlo::new(500)
                .with_seed(42)
                .with_threads(threads)
                .run(
                    &s,
                    ExecutorOptions::default(),
                    |_| FixedCscp { interval: 100.0 },
                    |seed| PoissonProcess::new(5e-4, StdRng::seed_from_u64(seed)),
                )
        };
        let a = run(1);
        let b = run(7);
        // Thread count must not affect the per-replication outcomes
        // (per-replication seeding); counts are exactly equal, float means
        // only up to Welford merge-order rounding.
        assert_eq!(a.timely, b.timely);
        assert_eq!(a.completed, b.completed);
        assert!((a.faults.mean() - b.faults.mean()).abs() < 1e-9);
        let rel = (a.energy_all.mean() - b.energy_all.mean()).abs() / a.energy_all.mean();
        assert!(rel < 1e-12);
    }

    #[test]
    fn fault_rate_reduces_timeliness() {
        let s = Scenario::new(
            TaskSpec::new(1000.0, 1400.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let mc = MonteCarlo::new(2000).with_seed(7);
        let run_with = |lambda: f64| {
            mc.run(
                &s,
                ExecutorOptions::default(),
                |_| FixedCscp { interval: 100.0 },
                move |seed| PoissonProcess::new(lambda, StdRng::seed_from_u64(seed)),
            )
        };
        let low = run_with(1e-5);
        let high = run_with(2e-3);
        assert!(low.p_timely() > high.p_timely());
        assert!(low.faults.mean() < high.faults.mean());
        // Faulty runs do strictly more work on average.
        assert!(high.energy_all.mean() > 0.0);
    }

    #[test]
    fn p_ci_brackets_p() {
        let s = scenario();
        let sum = MonteCarlo::new(300).with_seed(3).run(
            &s,
            ExecutorOptions::default(),
            |_| FixedCscp { interval: 100.0 },
            |seed| PoissonProcess::new(1e-3, StdRng::seed_from_u64(seed)),
        );
        let p = sum.p_timely();
        let (lo, hi) = sum.p_timely_ci(1.96);
        assert!(lo <= p && p <= hi);
    }

    #[test]
    fn nan_energy_when_nothing_timely() {
        // Deadline impossible to meet.
        let s = Scenario::new(
            TaskSpec::new(1000.0, 500.0),
            CheckpointCosts::paper_scp_variant(),
            DvsConfig::paper_default(),
        );
        let sum = MonteCarlo::new(50).run(
            &s,
            ExecutorOptions::default(),
            |_| FixedCscp { interval: 100.0 },
            |seed| PoissonProcess::new(0.0, StdRng::seed_from_u64(seed)),
        );
        assert_eq!(sum.timely, 0);
        assert_eq!(sum.p_timely(), 0.0);
        assert!(sum.mean_energy_timely().is_nan(), "paper-style NaN cell");
        // Unconditional energy is still defined.
        assert!(sum.energy_all.mean() > 0.0);
    }

    #[test]
    #[should_panic(expected = "replications")]
    fn zero_replications_rejected() {
        let s = scenario();
        MonteCarlo::new(0).run(
            &s,
            ExecutorOptions::default(),
            |_| FixedCscp { interval: 100.0 },
            |seed| PoissonProcess::new(0.0, StdRng::seed_from_u64(seed)),
        );
    }

    #[test]
    fn replication_seed_decorrelates() {
        let s0 = replication_seed(1, 0);
        let s1 = replication_seed(1, 1);
        let s2 = replication_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }
}
