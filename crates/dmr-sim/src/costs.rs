//! Checkpoint operation costs.

use crate::policy::CheckpointKind;

/// Costs of the three checkpoint operations and of a rollback, expressed in
/// **cycles** (the paper's `ts`, `tcp`, `tr`, with `c = ts + tcp`).
///
/// At processor speed `f` an operation of `x` cycles takes `x / f` time
/// units, which is exactly how the paper obtains a frequency-dependent
/// checkpoint overhead `C = c / f`.
///
/// # Examples
///
/// ```
/// use eacp_sim::{CheckpointCosts, CheckpointKind};
/// let costs = CheckpointCosts::paper_scp_variant();
/// assert_eq!(costs.store_cycles, 2.0);
/// assert_eq!(costs.compare_cycles, 20.0);
/// assert_eq!(costs.cscp_cycles(), 22.0);
/// assert_eq!(costs.cycles_of(CheckpointKind::Store), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CheckpointCosts {
    /// `ts`: cycles to store the states of both processors.
    pub store_cycles: f64,
    /// `tcp`: cycles to compare the processors' states.
    pub compare_cycles: f64,
    /// `tr`: cycles to roll the processors back to a consistent state
    /// (the paper's experiments set `tr = 0`).
    pub rollback_cycles: f64,
}

impl CheckpointCosts {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if any cost is negative or not finite, or if
    /// `store_cycles + compare_cycles == 0` (a free CSCP would allow
    /// zero-progress scheduling loops).
    pub fn new(store_cycles: f64, compare_cycles: f64, rollback_cycles: f64) -> Self {
        for (name, v) in [
            ("store_cycles", store_cycles),
            ("compare_cycles", compare_cycles),
            ("rollback_cycles", rollback_cycles),
        ] {
            assert!(
                v >= 0.0 && v.is_finite(),
                "{name} must be non-negative and finite"
            );
        }
        assert!(
            store_cycles + compare_cycles > 0.0,
            "store_cycles + compare_cycles must be positive"
        );
        Self {
            store_cycles,
            compare_cycles,
            rollback_cycles,
        }
    }

    /// The parameters of the paper's SCP experiments (Tables 1–2):
    /// cheap store, expensive compare — `ts = 2, tcp = 20, tr = 0`.
    pub fn paper_scp_variant() -> Self {
        Self::new(2.0, 20.0, 0.0)
    }

    /// The parameters of the paper's CCP experiments (Tables 3–4):
    /// expensive store, cheap compare — `ts = 20, tcp = 2, tr = 0`.
    pub fn paper_ccp_variant() -> Self {
        Self::new(20.0, 2.0, 0.0)
    }

    /// Cycles of a full compare-and-store checkpoint (`c = ts + tcp`).
    #[inline]
    pub fn cscp_cycles(&self) -> f64 {
        self.store_cycles + self.compare_cycles
    }

    /// Cycles consumed by a checkpoint of the given kind.
    #[inline]
    pub fn cycles_of(&self, kind: CheckpointKind) -> f64 {
        match kind {
            CheckpointKind::Store => self.store_cycles,
            CheckpointKind::Compare => self.compare_cycles,
            CheckpointKind::CompareStore => self.cscp_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants() {
        let scp = CheckpointCosts::paper_scp_variant();
        let ccp = CheckpointCosts::paper_ccp_variant();
        assert_eq!(scp.cscp_cycles(), 22.0);
        assert_eq!(ccp.cscp_cycles(), 22.0);
        assert_eq!(scp.rollback_cycles, 0.0);
    }

    #[test]
    fn cycles_of_each_kind() {
        let c = CheckpointCosts::new(3.0, 5.0, 1.0);
        assert_eq!(c.cycles_of(CheckpointKind::Store), 3.0);
        assert_eq!(c.cycles_of(CheckpointKind::Compare), 5.0);
        assert_eq!(c.cycles_of(CheckpointKind::CompareStore), 8.0);
    }

    #[test]
    #[should_panic(expected = "store_cycles")]
    fn rejects_negative_store() {
        CheckpointCosts::new(-1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_free_cscp() {
        CheckpointCosts::new(0.0, 0.0, 0.0);
    }
}
