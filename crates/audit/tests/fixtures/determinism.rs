//! R1 fixture: forbidden nondeterminism sources in a scoped crate.

use std::collections::HashMap;

fn timing() {
    let t = Instant::now();
    let _ = t;
}

fn env_read() {
    let _ = std::env::var("SEED");
}

fn string_mention() {
    let _ = "HashMap in a string literal is fine";
}

fn suppressed() {
    // audit:allow(determinism): fixture — demonstrating a reasoned grant.
    let _ = HashSet::with_capacity(4);
}
