//! R4 fixture: panic-policy violations, test exemption, trailing allow.

pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn worse() {
    panic!("boom");
}

pub fn checked(x: Option<u32>) -> u32 {
    x.expect("caller checked") // audit:allow(panic): fixture invariant.
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        Some(1).unwrap();
    }
}
