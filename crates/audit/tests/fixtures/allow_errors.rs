//! R5 fixture: malformed allow directives.

// audit:allow(panic)
pub fn bare() {}

// audit:allow(frobnicate): not a rule.
pub fn unknown() {}

// audit:allow(panic): reasoned but unused grants are not an error.
pub fn unused() {}
