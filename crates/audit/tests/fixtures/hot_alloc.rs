//! R3 fixture: allocation in a hot module, with the setup exemption.

pub fn hot_loop(buf: &mut Vec<u64>) {
    let v = Vec::new();
    let s = format!("x{}", buf.len());
    let _ = (v, s);
}

// audit:setup: fixture — builds pooled scratch once per job.
pub fn setup() -> Vec<u64> {
    Vec::with_capacity(64)
}
