//! Golden-output tests: each fixture under `tests/fixtures/` is audited
//! with an explicit [`FileClass`] and must yield exactly the expected
//! findings, rendered in the `file:line: rule-id: message` report format.

use eacp_audit::{audit_source, FileClass};

fn rendered(file: &str, class: FileClass, source: &str) -> Vec<String> {
    audit_source(file, class, source)
        .iter()
        .map(ToString::to_string)
        .collect()
}

const LIBRARY: FileClass = FileClass {
    crate_root: false,
    library: true,
    determinism: false,
    hot: false,
};

#[test]
fn determinism_fixture_matches_golden() {
    let got = rendered(
        "fx/determinism.rs",
        FileClass {
            determinism: true,
            ..LIBRARY
        },
        include_str!("fixtures/determinism.rs"),
    );
    assert_eq!(
        got,
        [
            "fx/determinism.rs:3: R1-determinism: `HashMap` in a determinism-critical crate: \
             iteration order is nondeterministic; use BTreeMap",
            "fx/determinism.rs:6: R1-determinism: `Instant` in a determinism-critical crate: \
             wall-clock reads break replay determinism",
            "fx/determinism.rs:11: R1-determinism: `std::env` in a determinism-critical crate: \
             environment reads are machine-dependent",
        ]
    );
}

#[test]
fn panic_fixture_matches_golden() {
    let got = rendered("fx/panics.rs", LIBRARY, include_str!("fixtures/panics.rs"));
    assert_eq!(
        got,
        [
            "fx/panics.rs:4: R4-panic: `unwrap()` in library code — propagate an error, or \
             annotate the checked invariant with audit:allow(panic)",
            "fx/panics.rs:8: R4-panic: `panic!` in library code — propagate an error, or \
             annotate the checked invariant with audit:allow(panic)",
        ]
    );
}

#[test]
fn hot_alloc_fixture_matches_golden() {
    let got = rendered(
        "fx/hot_alloc.rs",
        FileClass {
            hot: true,
            ..LIBRARY
        },
        include_str!("fixtures/hot_alloc.rs"),
    );
    assert_eq!(
        got,
        [
            "fx/hot_alloc.rs:4: R3-alloc: allocation constructor `Vec::new` in a hot module — \
             pool it in setup (see `audit:setup`) or move it off the replication path",
            "fx/hot_alloc.rs:5: R3-alloc: allocation constructor `format!` in a hot module — \
             pool it in setup (see `audit:setup`) or move it off the replication path",
        ]
    );
}

#[test]
fn allow_misuse_fixture_matches_golden() {
    let got = rendered(
        "fx/allow_errors.rs",
        LIBRARY,
        include_str!("fixtures/allow_errors.rs"),
    );
    assert_eq!(
        got,
        [
            "fx/allow_errors.rs:3: R5-allow: allow(panic) without a reason — write \
             `audit:allow(panic): <why this is sound>`",
            "fx/allow_errors.rs:6: R5-allow: unknown rule `frobnicate` in allow (expected \
             determinism, unsafe, alloc or panic)",
        ]
    );
}

#[test]
fn missing_forbid_fixture_matches_golden() {
    let got = rendered(
        "fx/missing_forbid.rs",
        FileClass {
            crate_root: true,
            ..LIBRARY
        },
        include_str!("fixtures/missing_forbid.rs"),
    );
    assert_eq!(
        got,
        ["fx/missing_forbid.rs:1: R2-unsafe: crate root is missing #![forbid(unsafe_code)]"]
    );
}

#[test]
fn clean_fixtures_stay_clean_under_other_rules() {
    // The determinism fixture only violates R1: with determinism scoping
    // off it must come back clean (the allow grant stays well-formed).
    let got = rendered(
        "fx/determinism.rs",
        LIBRARY,
        include_str!("fixtures/determinism.rs"),
    );
    assert_eq!(got, Vec::<String>::new());

    // The hot-path fixture allocates, but that is fine off the hot list.
    let got = rendered(
        "fx/hot_alloc.rs",
        LIBRARY,
        include_str!("fixtures/hot_alloc.rs"),
    );
    assert_eq!(got, Vec::<String>::new());
}
