//! The workspace must audit clean: this is the same gate CI runs via
//! `eacp-audit check`, expressed as a test so `cargo test` alone catches
//! a regression even without the CI job.

use std::path::Path;

#[test]
fn workspace_audits_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("audit crate lives two levels below the workspace root");
    let findings = eacp_audit::audit_workspace(root).expect("workspace is readable");
    assert!(
        findings.is_empty(),
        "workspace has audit findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
}
