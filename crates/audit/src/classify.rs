//! Maps workspace-relative paths to the rule sets that apply to them.
//!
//! The scope contract (documented in the README's "Invariants & audit"
//! section):
//!
//! * **Crate roots** (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs` of every
//!   workspace member, including the vendored shims) are checked for R2.
//! * **Library sources** (everything under a member's `src/` except binary
//!   entry points) are checked for R4. Binaries may panic at the top
//!   level; libraries must propagate.
//! * **Determinism-critical crates** — the simulation/execution stack —
//!   are additionally checked for R1.
//! * **Hot modules** — the per-replication code paths — are additionally
//!   checked for R3.
//! * `vendor/` shims are third-party stand-ins: R2 only.
//! * `tests/`, `benches/`, `examples/` are out of scope for v1 (tests are
//!   expected to unwrap; they are exercised by the engine's own fixtures
//!   instead).

/// Crates whose sources must stay deterministic (R1): anything that runs
/// inside a replication or computes results that reports compare
/// bit-for-bit. The result store qualifies because a cache hit must be
/// byte-identical to recomputation — filesystem and clock access are
/// confined to its backend behind `audit:allow` notes.
pub const DETERMINISM_CRATES: &[&str] = &[
    "dmr-sim",
    "fault-model",
    "core",
    "rt-sched",
    "energy-model",
    "numerics",
    "exec",
    "store",
];

/// Modules on the per-replication hot path (R3): allocation here must be
/// pooled in setup functions, never per replication.
pub const HOT_MODULES: &[&str] = &[
    "crates/dmr-sim/src/engine.rs",
    "crates/exec/src/runner.rs",
    "crates/exec/src/job.rs",
    "crates/exec/src/workload.rs",
    "crates/exec/src/executive_mc.rs",
    "crates/rt-sched/src/executive.rs",
    "crates/fault-model/src/batch.rs",
    "crates/core/src/policies/plan_cache.rs",
];

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// R2: must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// R4: non-test panic policy.
    pub library: bool,
    /// R1: determinism policy.
    pub determinism: bool,
    /// R3: hot-path allocation policy.
    pub hot: bool,
}

/// Classifies a workspace-relative path (unix separators). `None` means
/// the file is out of audit scope.
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    // Generated/build output and fixture corpora are never audited.
    if rel.starts_with("target/") || rel.contains("/fixtures/") {
        return None;
    }
    if rel.starts_with("vendor/") {
        // Vendored shims stand in for third-party crates: only the
        // unsafe-hygiene rule applies, and only to their roots.
        return rel.ends_with("/src/lib.rs").then_some(FileClass {
            crate_root: true,
            library: false,
            determinism: false,
            hot: false,
        });
    }

    let in_src = |prefix: &str| {
        rel.strip_prefix(prefix)
            .and_then(|r| r.strip_prefix("src/"))
            .is_some_and(|r| !r.is_empty())
    };

    // The workspace facade crate at the repo root.
    if in_src("") && !rel.starts_with("crates/") {
        let root = rel == "src/lib.rs" || rel == "src/main.rs" || rel.starts_with("src/bin/");
        let bin = rel == "src/main.rs" || rel.starts_with("src/bin/");
        return Some(FileClass {
            crate_root: root,
            library: !bin,
            determinism: false,
            hot: false,
        });
    }

    let member = rel.strip_prefix("crates/")?;
    let (name, inside) = member.split_once("/src/")?;
    if inside.is_empty() {
        return None;
    }
    let bin = inside == "main.rs" || inside.starts_with("bin/");
    Some(FileClass {
        crate_root: inside == "lib.rs" || bin,
        library: !bin,
        determinism: DETERMINISM_CRATES.contains(&name),
        hot: HOT_MODULES.contains(&rel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_contract() {
        // Hot modules in determinism crates — including the executive
        // replication path (workload seam, executive Monte-Carlo, and the
        // rt-sched executive engine it drives).
        for hot in [
            "crates/dmr-sim/src/engine.rs",
            "crates/exec/src/workload.rs",
            "crates/exec/src/executive_mc.rs",
            "crates/rt-sched/src/executive.rs",
            "crates/fault-model/src/batch.rs",
            "crates/core/src/policies/plan_cache.rs",
        ] {
            let c = classify(hot);
            assert_eq!(
                c,
                Some(FileClass {
                    crate_root: false,
                    library: true,
                    determinism: true,
                    hot: true,
                }),
                "{hot}"
            );
        }
        // Binary entry points: R2 but not R4.
        let c = classify("crates/cli/src/main.rs");
        assert_eq!(
            c,
            Some(FileClass {
                crate_root: true,
                library: false,
                determinism: false,
                hot: false,
            })
        );
        assert!(classify("crates/experiments/src/bin/sweep.rs").is_some_and(|c| !c.library));
        // The remote transport lives in a determinism crate (a fleet run
        // must be bit-identical to a local one) but is not a hot module:
        // it allocates per request, never per replication.
        assert_eq!(
            classify("crates/exec/src/remote.rs"),
            Some(FileClass {
                crate_root: false,
                library: true,
                determinism: true,
                hot: false,
            })
        );
        // The result store is determinism-scoped: a cache hit must be
        // byte-identical to recomputation.
        assert!(classify("crates/store/src/fs.rs").is_some_and(|c| c.determinism && c.library));
        assert!(classify("crates/store/src/lib.rs").is_some_and(|c| c.determinism && c.crate_root));
        // Vendored shims: R2 on the root only.
        assert_eq!(
            classify("vendor/rand/src/lib.rs"),
            Some(FileClass {
                crate_root: true,
                library: false,
                determinism: false,
                hot: false,
            })
        );
        assert_eq!(classify("vendor/rand/src/other.rs"), None);
        // Facade crate root.
        assert!(classify("src/lib.rs").is_some_and(|c| c.crate_root && c.library));
        // Out of scope.
        assert_eq!(classify("crates/exec/tests/golden_identity.rs"), None);
        assert_eq!(classify("crates/audit/tests/fixtures/r4.rs"), None);
        assert_eq!(classify("README.md"), None);
        assert_eq!(classify("target/debug/build/foo.rs"), None);
    }
}
