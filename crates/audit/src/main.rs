//! `eacp-audit` — the workspace invariant linter's command-line front end.
//!
//! ```text
//! eacp-audit check [ROOT]   # audit the workspace (default: find root
//!                           # upward from the current directory);
//!                           # exit 0 clean, 1 on findings, 2 on usage/IO
//! eacp-audit rules          # list the enforced rules
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(args.get(1).map(PathBuf::from)),
        Some("rules") => {
            print!("{}", rules_text());
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("eacp-audit: unknown command `{other}`\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn check(root: Option<PathBuf>) -> ExitCode {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("eacp-audit: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match eacp_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "eacp-audit: no [workspace] Cargo.toml above {} — pass a root explicitly",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match eacp_audit::audit_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "audit: workspace clean ({} rules enforced)",
                eacp_audit::Rule::ALL.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            let files: std::collections::BTreeSet<&str> =
                findings.iter().map(|f| f.file.as_str()).collect();
            eprintln!(
                "audit: {} finding(s) in {} file(s) — run `eacp-audit rules` for the policy",
                findings.len(),
                files.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("eacp-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn rules_text() -> String {
    let mut out = String::from("enforced rules (any finding fails the audit):\n");
    for rule in eacp_audit::Rule::ALL {
        out.push_str(&format!("  {:<15} {}\n", rule.id(), rule.describe()));
    }
    out.push_str(
        "\nsuppression: `// audit:allow(<rule>): <reason>` on (or directly above) the line;\n\
         hot-path setup fns: `// audit:setup: <reason>` directly above the fn.\n",
    );
    out
}

fn usage() -> String {
    "eacp-audit — workspace invariant linter\n\
     \n\
     usage:\n\
     \x20 eacp-audit check [ROOT]   audit the workspace (exit 1 on findings)\n\
     \x20 eacp-audit rules          list the enforced rules\n"
        .to_owned()
}
