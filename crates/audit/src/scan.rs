//! Source scanner: splits each line of a Rust file into *code text* and
//! *comment text*, with string/char-literal contents blanked out of the
//! code, and tracks brace-delimited exemption regions (`#[cfg(test)]`
//! items and `audit:setup`-marked functions).
//!
//! The scanner is deliberately lexical — no parsing, no `syn`, no
//! third-party crates (the workspace builds offline). It understands just
//! enough Rust surface syntax for the rules to be reliable:
//!
//! * line comments (`//`), nested block comments (`/* /* */ */`),
//! * string literals with escapes, byte strings, raw strings
//!   (`r"…"`, `r#"…"#`, `br#"…"#`), char and byte literals,
//!   lifetimes (`'a` is *not* a char literal),
//! * brace depth, computed only from code text.
//!
//! Rule patterns are then matched against the blanked code text, so a
//! `".unwrap()"` inside a string or a doc comment never fires, and the
//! allow-comment grammar is matched against the comment text, so
//! `audit:allow` inside a string never suppresses anything.

/// One scanned source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked
    /// (quotes kept, interiors replaced by spaces).
    pub code: String,
    /// Concatenated comment text on this line (comment markers stripped).
    pub comment: String,
    /// True while inside a `#[cfg(test)]` item (or on its opening line).
    pub in_test: bool,
    /// True while inside a function marked with a preceding
    /// `// audit:setup: <reason>` comment (hot-path allocation exemption).
    pub in_setup: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exempt {
    Test,
    Setup,
}

/// Scans a whole file into per-line code/comment text plus exemption
/// flags. Lines are returned in order; line numbers are index + 1.
pub fn scan(source: &str) -> Vec<Line> {
    let mut lines = split_literals(source);
    mark_regions(&mut lines);
    lines
}

/// Pass 1: separate code from comments and blank literal interiors.
fn split_literals(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut mode = Mode::Code;

    for raw in source.lines() {
        let mut line = Line::default();
        let bytes = raw.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            match mode {
                Mode::Code => {
                    if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        mode = Mode::LineComment;
                        i += 2;
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        line.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                        continue;
                    }
                    if let Some(hashes) = raw_string_open(bytes, i) {
                        line.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += skip_raw_open(bytes, i);
                        continue;
                    }
                    if b == b'\'' {
                        if let Some(len) = char_literal_len(bytes, i) {
                            // Entire literal on this line: blank it.
                            line.code.push('\'');
                            line.code.push(' ');
                            line.code.push('\'');
                            i += len;
                            continue;
                        }
                        // A lifetime (or stray quote): plain code.
                        line.code.push('\'');
                        i += 1;
                        continue;
                    }
                    line.code.push(b as char);
                    i += 1;
                }
                Mode::LineComment => {
                    line.comment.push(b as char);
                    i += 1;
                }
                Mode::BlockComment(depth) => {
                    if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        i += 2;
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(depth + 1);
                        i += 2;
                        continue;
                    }
                    line.comment.push(b as char);
                    i += 1;
                }
                Mode::Str => {
                    if b == b'\\' {
                        line.code.push(' ');
                        if i + 1 < bytes.len() {
                            line.code.push(' ');
                        }
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        line.code.push('"');
                        mode = Mode::Code;
                    } else {
                        line.code.push(' ');
                    }
                    i += 1;
                }
                Mode::RawStr(hashes) => {
                    if b == b'"' && closes_raw(bytes, i, hashes) {
                        line.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
        // Line comments end with the line; strings/block comments carry on.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
        lines.push(line);
    }
    lines
}

/// Is `bytes[i..]` the opening of a raw (byte) string? Returns the hash
/// count when it is.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    // `r` must not be part of a longer identifier (`for`, `number_r`…).
    if i > 0 && is_ident(bytes[i - 1]) {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Length of the `r#"`-style opener at `i` (caller checked it opens).
fn skip_raw_open(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // r
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    j + 1 - i // closing quote of the opener
}

fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Length of a char/byte literal starting at the `'` at `i`, or `None`
/// when this quote starts a lifetime instead.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(&b'\\') => {
            // Escaped char: scan to the closing quote on this line.
            let mut j = i + 2;
            while j < bytes.len() {
                if bytes[j] == b'\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&b'\'') => Some(3),
        _ => None, // lifetime: 'a, '_, 'static
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Pass 2: mark `#[cfg(test)]` and `audit:setup` regions by brace depth.
fn mark_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut stack: Vec<(i64, Exempt)> = Vec::new();
    let mut pending: Option<Exempt> = None;

    for line in lines.iter_mut() {
        let compact: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]")
            || compact.contains("#[cfg(all(test")
            || compact.contains("#[cfg(any(test")
        {
            pending = Some(Exempt::Test);
        }
        if line.comment.trim_start().starts_with("audit:setup") {
            pending = Some(Exempt::Setup);
        }

        let before_test = stack.iter().any(|(_, k)| *k == Exempt::Test);
        let before_setup = stack.iter().any(|(_, k)| *k == Exempt::Setup);

        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(kind) = pending.take() {
                        stack.push((depth, kind));
                    }
                }
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|(d, _)| *d > depth) {
                        stack.pop();
                    }
                }
                ';' if pending == Some(Exempt::Test) && stack.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item; don't latch onto a later block.
                    pending = None;
                }
                _ => {}
            }
        }

        let after_test = stack.iter().any(|(_, k)| *k == Exempt::Test);
        let after_setup = stack.iter().any(|(_, k)| *k == Exempt::Setup);
        line.in_test = before_test || after_test;
        line.in_setup = before_setup || after_setup;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_out_of_code() {
        let src = r#"let x = "a.unwrap() // not code"; // real.unwrap() comment"#;
        let lines = scan(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("real.unwrap() comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn byte_and_escaped_char_literals_are_blanked() {
        let lines = scan("m(b'{'); n('\\n'); o('}');");
        let code = &lines[0].code;
        assert!(!code.contains('{'), "code = {code:?}");
        assert!(!code.contains('}'), "code = {code:?}");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = scan("let s = r#\"panic!(\"x\")\"#; done();");
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("done()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan("a(); /* x /* y */ still */ b();\nc();");
        assert!(lines[0].code.contains("a()"));
        assert!(lines[0].code.contains("b()"));
        assert!(!lines[0].code.contains("still"));
        assert!(lines[1].code.contains("c()"));
    }

    #[test]
    fn cfg_test_region_covers_the_whole_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test, "region must close with the module");
    }

    #[test]
    fn cfg_test_on_a_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }\n";
        let lines = scan(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn setup_marker_exempts_one_function() {
        let src = "// audit:setup: builds the pool\nfn build() {\n    Vec::new();\n}\nfn hot() { Vec::new(); }\n";
        let lines = scan(src);
        assert!(lines[2].in_setup);
        assert!(!lines[4].in_setup, "exemption must end with the fn");
    }
}
