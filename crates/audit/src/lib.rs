//! `eacp-audit` — workspace invariant linter for the EACP reproduction.
//!
//! Every guarantee this workspace sells — Summaries bit-identical across
//! thread and worker counts, `QueueRunner` ≡ `LocalRunner` under any
//! failure schedule, zero allocation per replication — rests on source
//! invariants that example-based tests can only spot-check. This crate
//! rejects the violating *patterns at the source level*:
//!
//! * **R1-determinism** — no `Instant`/`SystemTime`, `HashMap`/`HashSet`,
//!   `std::env` or entropy-seeded RNGs in the simulation/execution crates.
//! * **R2-unsafe** — every crate root carries `#![forbid(unsafe_code)]`.
//! * **R3-alloc** — no allocation constructors in hot modules outside
//!   `// audit:setup: <reason>` functions and `#[cfg(test)]` blocks.
//! * **R4-panic** — no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
//!   in non-test library code.
//! * **R5-allow** — `// audit:allow(<rule>): <reason>` suppresses a
//!   finding on the next line (or its own, when trailing); a bare allow
//!   without a reason is itself a violation.
//!
//! Findings are reported as `file:line: rule-id: message`; any finding
//! makes `eacp-audit check` exit nonzero, and CI gates on it. The analyzer
//! is a purpose-built line/token scanner (see [`scan`]) — std-only, no
//! third-party parser, consistent with the workspace's offline-build
//! constraint.
//!
//! The static pass is paired with a *dynamic* witness: the
//! `zero_alloc` integration test in `eacp-exec` (behind the `alloc-count`
//! feature) installs a counting `#[global_allocator]` and proves the
//! replication loop allocation-free for every scheme × fault process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod rules;
pub mod scan;

pub use classify::{classify, FileClass, DETERMINISM_CRATES, HOT_MODULES};
pub use rules::{audit_source, Finding, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Audits every in-scope `.rs` file under a workspace root.
///
/// Findings come back sorted by (file, line, rule) so reports and golden
/// assertions are stable.
///
/// # Errors
///
/// Returns any I/O error encountered while walking or reading sources,
/// and an [`io::ErrorKind::NotFound`] when `root` is not a workspace
/// (no `Cargo.toml`).
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} is not a cargo workspace (no Cargo.toml)",
                root.display()
            ),
        ));
    }
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    for rel in files {
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = fs::read_to_string(root.join(&rel))?;
        findings.extend(audit_source(&rel, class, &source));
    }
    Ok(findings)
}

/// Recursively collects workspace-relative paths of candidate `.rs` files.
///
/// Only `src/` trees are audited (see [`classify`]); the walk prunes
/// everything else early so `target/` is never traversed.
fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "tests" | "benches" | "examples" | "fixtures" | ".git" | ".github"
            ) {
                continue;
            }
            collect_sources(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative_unix(root, &path) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Workspace-relative path with unix separators (findings must render the
/// same on every platform).
fn relative_unix(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/audit");
        assert!(root.join("crates/audit").is_dir());
    }

    #[test]
    fn auditing_a_non_workspace_is_an_error() {
        assert!(audit_workspace(Path::new("/definitely/not/a/workspace")).is_err());
    }
}
