//! The audit rules (R1–R5), finding representation, and the allow-comment
//! grammar.
//!
//! Every finding is reported as `file:line: rule-id: message` and any
//! finding fails the audit. A finding can be suppressed with an
//! allow comment carrying a reason:
//!
//! ```text
//! // audit:allow(determinism): seeded from the spec, not the clock
//! let t = Instant::now();
//! ```
//!
//! The allow applies to the next line — or to its own line when it is a
//! trailing comment after code. A bare allow without a reason, or one
//! naming an unknown rule, is itself a violation (R5).

use crate::classify::FileClass;
use crate::scan::{scan, Line};

/// The audited invariants. Short names are the allow-comment vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no wall-clock, hash-order, environment or entropy dependence in
    /// the simulation/execution crates.
    Determinism,
    /// R2: every crate root carries `#![forbid(unsafe_code)]`.
    Unsafe,
    /// R3: no allocation constructors in designated hot modules outside
    /// setup functions and tests.
    Alloc,
    /// R4: no `unwrap`/`expect`/`panic!`-family calls in non-test library
    /// code.
    Panic,
    /// R5: allow comments must be well-formed and carry a reason.
    Allow,
}

impl Rule {
    /// The stable rule id used in reports (`R1-determinism`, …).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "R1-determinism",
            Rule::Unsafe => "R2-unsafe",
            Rule::Alloc => "R3-alloc",
            Rule::Panic => "R4-panic",
            Rule::Allow => "R5-allow",
        }
    }

    /// The short name accepted inside `audit:allow(...)`.
    pub fn allow_name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Unsafe => "unsafe",
            Rule::Alloc => "alloc",
            Rule::Panic => "panic",
            Rule::Allow => "allow",
        }
    }

    fn from_allow_name(name: &str) -> Option<Self> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "unsafe" => Some(Rule::Unsafe),
            "alloc" => Some(Rule::Alloc),
            "panic" => Some(Rule::Panic),
            _ => None,
        }
    }

    /// Every rule, in report order — for `eacp-audit rules`.
    pub const ALL: [Rule; 5] = [
        Rule::Determinism,
        Rule::Unsafe,
        Rule::Alloc,
        Rule::Panic,
        Rule::Allow,
    ];

    /// One-line description for the rule listing.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "forbids Instant/SystemTime, HashMap/HashSet, std::env, entropy-seeded RNGs \
                 and float-environment access (arch intrinsics, runtime CPU-feature dispatch) \
                 in the simulation/execution crates (dmr-sim, fault-model, core, rt-sched, \
                 energy-model, numerics, exec, store)"
            }
            Rule::Unsafe => "every workspace crate root must carry #![forbid(unsafe_code)]",
            Rule::Alloc => {
                "forbids allocation constructors (Box::new, Vec::new, vec!, to_vec, \
                 String::from/new, to_owned, to_string, format!, collect::<Vec, with_capacity) \
                 in hot modules outside `// audit:setup: <reason>` functions and tests"
            }
            Rule::Panic => {
                "forbids .unwrap()/.expect(/panic!/todo!/unimplemented! in non-test library code"
            }
            Rule::Allow => {
                "`// audit:allow(<rule>): <reason>` suppresses a finding on the next \
                 code-bearing line (or its own, when trailing); a bare allow without a reason \
                 is a violation"
            }
        }
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, unix separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation naming the offending construct.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A parsed allow grant. `target_line == 0` means "the next code-bearing
/// line after `from_line`" and is resolved once all lines are scanned.
#[derive(Debug)]
struct Grant {
    from_line: usize,
    target_line: usize,
    rule: Rule,
}

/// Constructs R1 forbids, matched as whole identifiers.
const DETERMINISM_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet",
    ),
    ("Instant", "wall-clock reads break replay determinism"),
    ("SystemTime", "wall-clock reads break replay determinism"),
    ("from_entropy", "entropy-seeded RNG; seed from the spec"),
    ("thread_rng", "entropy-seeded RNG; seed from the spec"),
    ("OsRng", "entropy-seeded RNG; seed from the spec"),
    (
        "is_x86_feature_detected",
        "runtime CPU-feature dispatch makes float results machine-dependent",
    ),
    (
        "is_aarch64_feature_detected",
        "runtime CPU-feature dispatch makes float results machine-dependent",
    ),
];

/// Substring R1 forbids (paths).
const DETERMINISM_PATHS: &[(&str, &str)] = &[
    ("std::env", "environment reads are machine-dependent"),
    ("rand::random", "entropy-seeded RNG; seed from the spec"),
    // The float environment (rounding mode, CPU-feature-dependent SIMD)
    // is only reachable through arch intrinsics in safe Rust; forbidding
    // them keeps closed-form results — the analytic serve tier compares
    // them bitwise against Monte-Carlo — identical on every machine.
    (
        "std::arch",
        "arch intrinsics can touch the float environment; results become machine-dependent",
    ),
    (
        "core::arch",
        "arch intrinsics can touch the float environment; results become machine-dependent",
    ),
];

/// Allocation constructors R3 forbids in hot modules, as substrings of
/// comment/string-stripped code.
const ALLOC_PATTERNS: &[&str] = &[
    "Box::new",
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    ".to_vec(",
    "String::from",
    "String::new",
    "String::with_capacity",
    ".to_owned(",
    ".to_string(",
    "format!",
    "collect::<Vec",
];

/// Panic-family constructs R4 forbids in non-test library code.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

/// Audits one file's source text under the given classification.
///
/// `file` is the workspace-relative display path used in findings.
pub fn audit_source(file: &str, class: FileClass, source: &str) -> Vec<Finding> {
    let lines = scan(source);
    let mut findings = Vec::new();
    let mut grants: Vec<Grant> = Vec::new();

    // Pass 1: allow-comment grammar (R5) and grant collection.
    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        collect_allows(file, n, line, &mut grants, &mut findings);
    }
    for grant in &mut grants {
        if grant.target_line == 0 {
            grant.target_line = lines
                .iter()
                .enumerate()
                .skip(grant.from_line)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map_or(usize::MAX, |(idx, _)| idx + 1);
        }
    }

    // Pass 2: per-line rules.
    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        if line.in_test {
            continue;
        }
        if class.determinism {
            check_determinism(file, n, line, &mut findings);
        }
        if class.hot && !line.in_setup {
            check_alloc(file, n, line, &mut findings);
        }
        if class.library {
            check_panic(file, n, line, &mut findings);
        }
    }

    // Per-file rule: crate roots must forbid unsafe code.
    if class.crate_root
        && !lines.iter().any(|l| {
            let compact: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
            compact.contains("#![forbid(unsafe_code)]")
        })
    {
        findings.push(Finding {
            file: file.to_owned(),
            line: 1,
            rule: Rule::Unsafe,
            message: "crate root is missing #![forbid(unsafe_code)]".to_owned(),
        });
    }

    // Apply grants.
    findings.retain(|f| {
        !grants
            .iter()
            .any(|g| g.target_line == f.line && g.rule == f.rule)
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Parses `audit:allow(rule): reason` occurrences in a line's comment.
fn collect_allows(
    file: &str,
    n: usize,
    line: &Line,
    grants: &mut Vec<Grant>,
    findings: &mut Vec<Finding>,
) {
    let mut bad = |message: String| {
        findings.push(Finding {
            file: file.to_owned(),
            line: n,
            rule: Rule::Allow,
            message,
        });
    };

    // A directive must *start* the comment (`// audit:allow(...)`), so
    // prose that merely mentions the grammar — doc comments, this very
    // file — is never parsed as one.
    let comment = line.comment.trim_start();
    if let Some(tail) = comment.strip_prefix("audit:allow") {
        let Some(open) = tail.strip_prefix('(') else {
            bad("malformed allow: expected `audit:allow(<rule>): <reason>`".to_owned());
            return;
        };
        let Some(close) = open.find(')') else {
            bad("malformed allow: unclosed rule name".to_owned());
            return;
        };
        let name = open[..close].trim();
        let Some(rule) = Rule::from_allow_name(name) else {
            bad(format!(
                "unknown rule `{name}` in allow (expected determinism, unsafe, alloc or panic)"
            ));
            return;
        };
        let after = open[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(format!(
                "allow({name}) without a reason — write `audit:allow({name}): <why this is sound>`"
            ));
            return;
        }
        // Trailing comment after code suppresses its own line; a comment
        // on a line of its own suppresses the next code-bearing line (so
        // the explanation may span several comment lines).
        let target_line = if line.code.trim().is_empty() { 0 } else { n };
        grants.push(Grant {
            from_line: n,
            target_line,
            rule,
        });
    } else if let Some(tail) = comment.strip_prefix("audit:setup") {
        // Setup markers share the reason requirement (the scanner already
        // honored the exemption; an unreasoned marker is still reported).
        if tail
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("")
            .is_empty()
        {
            bad(
                "setup marker without a reason — write `audit:setup: <why allocation is \
                 setup-only>`"
                    .to_owned(),
            );
        }
    }
}

fn check_determinism(file: &str, n: usize, line: &Line, findings: &mut Vec<Finding>) {
    for (ident, why) in DETERMINISM_IDENTS {
        if contains_ident(&line.code, ident) {
            findings.push(Finding {
                file: file.to_owned(),
                line: n,
                rule: Rule::Determinism,
                message: format!("`{ident}` in a determinism-critical crate: {why}"),
            });
        }
    }
    for (path, why) in DETERMINISM_PATHS {
        if line.code.contains(path) {
            findings.push(Finding {
                file: file.to_owned(),
                line: n,
                rule: Rule::Determinism,
                message: format!("`{path}` in a determinism-critical crate: {why}"),
            });
        }
    }
}

fn check_alloc(file: &str, n: usize, line: &Line, findings: &mut Vec<Finding>) {
    for pat in ALLOC_PATTERNS {
        if let Some(pos) = line.code.find(pat) {
            // Patterns that start mid-identifier (`vec!` inside `my_vec!`)
            // need a non-ident boundary on the left; `.`-anchored patterns
            // carry their own boundary.
            if !pat.starts_with('.') && pos > 0 && is_ident_char(line.code.as_bytes()[pos - 1]) {
                continue;
            }
            findings.push(Finding {
                file: file.to_owned(),
                line: n,
                rule: Rule::Alloc,
                message: format!(
                    "allocation constructor `{pat}` in a hot module — pool it in setup \
                     (see `audit:setup`) or move it off the replication path"
                ),
            });
            break; // one alloc finding per line is enough
        }
    }
}

fn check_panic(file: &str, n: usize, line: &Line, findings: &mut Vec<Finding>) {
    for pat in PANIC_PATTERNS {
        let mut start = 0usize;
        while let Some(off) = line.code[start..].find(pat) {
            let pos = start + off;
            start = pos + pat.len();
            if !pat.starts_with('.') && pos > 0 && is_ident_char(line.code.as_bytes()[pos - 1]) {
                continue; // e.g. `deny_panic!` must not match `panic!`
            }
            findings.push(Finding {
                file: file.to_owned(),
                line: n,
                rule: Rule::Panic,
                message: format!(
                    "`{}` in library code — propagate an error, or annotate the checked \
                     invariant with audit:allow(panic)",
                    pat.trim_start_matches('.')
                ),
            });
        }
    }
}

fn contains_ident(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(off) = code[start..].find(ident) {
        let pos = start + off;
        let end = pos + ident.len();
        let left_ok = pos == 0 || !is_ident_char(bytes[pos - 1]);
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = pos + ident.len();
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::FileClass;

    fn lib_class() -> FileClass {
        FileClass {
            crate_root: false,
            library: true,
            determinism: true,
            hot: false,
        }
    }

    #[test]
    fn determinism_rule_matches_whole_identifiers_only() {
        let f = audit_source("x.rs", lib_class(), "let m = MyHashMapLike::new();\n");
        assert!(f.is_empty(), "{f:?}");
        let f = audit_source("x.rs", lib_class(), "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn determinism_rule_flags_float_environment_access() {
        // The analytic serve tier's bitwise analytic ≡ MC contract relies
        // on the float pipeline being identical everywhere; arch
        // intrinsics and runtime feature dispatch are the only safe-Rust
        // doors into machine-dependent float behavior.
        let f = audit_source(
            "x.rs",
            lib_class(),
            "use std::arch::x86_64::_MM_SET_ROUNDING_MODE;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Determinism);
        let f = audit_source(
            "x.rs",
            lib_class(),
            "if is_x86_feature_detected!(\"avx2\") {}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::Determinism);
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src = "let t = now_instant(); // audit:allow(panic): not a panic\nx.unwrap();\n";
        let f = audit_source("x.rs", lib_class(), src);
        // The allow targets line 1 (no panic there), so line 2 still fires.
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn bare_allow_is_a_violation() {
        let src = "// audit:allow(panic)\nx.unwrap();\n";
        let f = audit_source("x.rs", lib_class(), src);
        assert!(f.iter().any(|f| f.rule == Rule::Allow));
        assert!(
            f.iter().any(|f| f.rule == Rule::Panic),
            "a bare allow must not suppress"
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "let x = y.unwrap_or(0); let z = y.unwrap_or_else(f);\n";
        assert!(audit_source("x.rs", lib_class(), src).is_empty());
    }
}
