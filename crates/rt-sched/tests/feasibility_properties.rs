//! Property-based tests of the k-fault-tolerant WCET inflation and the
//! feasibility analyses built on it.

use eacp_rtsched::feasibility::{edf_density, k_fault_wcet, minimum_feasible_speed};
use eacp_rtsched::{PeriodicTask, TaskSet};
use eacp_sim::CheckpointCosts;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The k-fault WCET inflation is strictly monotone in k (another
    /// tolerated fault always costs a re-executed interval plus its
    /// checkpoint) and bounded below by the fault-free form `N + c`.
    #[test]
    fn k_fault_wcet_is_monotone_in_k(
        n in 10.0f64..1e6,
        c in 0.5f64..500.0,
        k in 0u32..40,
    ) {
        let w_k = k_fault_wcet(n, c, k);
        let w_next = k_fault_wcet(n, c, k + 1);
        prop_assert!(w_next > w_k, "WCET_{}({n}) = {w_next} <= WCET_{}({n}) = {w_k}", k + 1, k);
        prop_assert!(w_k >= n + c - 1e-9);
        // The closed form: N + 2·sqrt(kNc) + kc.
        if k > 0 {
            let expected = n + 2.0 * (k as f64 * n * c).sqrt() + k as f64 * c;
            prop_assert!((w_k - expected).abs() < 1e-6 * expected.max(1.0));
        }
    }

    /// Monotonicity lifts to the analyses: EDF density never decreases
    /// with k, and the minimum feasible DVS level never gets slower.
    #[test]
    fn feasibility_is_monotone_in_k(
        wcet in 50.0f64..1500.0,
        scale in 1u64..=4,
        k in 0u32..10,
    ) {
        let period = 4_000 * scale;
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", wcet, period, period),
            PeriodicTask::new("b", wcet * 1.5, period * 2, period * 2),
        ]);
        let costs = CheckpointCosts::paper_scp_variant();
        let d_k = edf_density(&set, &costs, k, 1.0);
        let d_next = edf_density(&set, &costs, k + 1, 1.0);
        prop_assert!(d_next > d_k);

        let dvs = eacp_energy::DvsConfig::paper_default();
        let s_k = minimum_feasible_speed(&set, &costs, k, &dvs);
        let s_next = minimum_feasible_speed(&set, &costs, k + 1, &dvs);
        // A feasible level for k+1 faults is feasible for k; the index
        // can only grow (or fall off the table) as k grows.
        match (s_k, s_next) {
            (Some(a), Some(b)) => prop_assert!(a <= b),
            (None, Some(_)) => prop_assert!(false, "k+1 feasible but k infeasible"),
            _ => {}
        }
    }
}
