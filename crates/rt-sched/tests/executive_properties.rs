//! Property-based tests of the EDF executive's scheduling invariants.

use eacp_core::policies::Adaptive;
use eacp_energy::DvsConfig;
use eacp_rtsched::executive::{run_executive, ExecutiveConfig};
use eacp_rtsched::{PeriodicTask, TaskSet};
use eacp_sim::CheckpointCosts;
use proptest::prelude::*;

/// Strategy: 1–3 periodic tasks with light-to-moderate utilization.
fn taskset_strategy() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec(
        (50.0f64..800.0, 1u64..=4).prop_map(|(wcet, scale)| {
            let period = 4_000 * scale;
            PeriodicTask::new(format!("t{scale}-{wcet:.0}"), wcet, period, period)
        }),
        1..4,
    )
    .prop_map(TaskSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executive invariants: one record per release, execution windows
    /// never overlap, every job starts at or after its release, records
    /// come out sorted, and the miss ratio is a probability.
    #[test]
    fn executive_scheduling_invariants(
        set in taskset_strategy(),
        lambda in 0.0f64..1e-3,
        seed in 0u64..500,
    ) {
        let config = ExecutiveConfig {
            set: &set,
            costs: CheckpointCosts::paper_scp_variant(),
            dvs: DvsConfig::paper_default(),
            lambda,
            hyperperiods: 2,
            seed,
        };
        let report = run_executive(&config, |_, l| Box::new(Adaptive::dvs_scp(l, 2)));

        // One record per release over the horizon.
        let horizon = set.hyperperiod() * 2;
        let expected: usize = set
            .tasks()
            .iter()
            .map(|t| (horizon / t.period) as usize)
            .sum();
        prop_assert_eq!(report.jobs.len(), expected);

        // Records sorted by (release, task); starts respect releases.
        for w in report.jobs.windows(2) {
            prop_assert!(
                w[0].release < w[1].release
                    || (w[0].release == w[1].release && w[0].task <= w[1].task)
            );
        }
        for j in &report.jobs {
            prop_assert!(j.started >= j.release - 1e-9);
            prop_assert!(j.finished >= j.started - 1e-9);
        }

        // Non-preemptive single-pair executive: execution windows of jobs
        // that actually ran must not overlap.
        let mut windows: Vec<(f64, f64)> = report
            .jobs
            .iter()
            .filter(|j| j.finished > j.started)
            .map(|j| (j.started, j.finished))
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in windows.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }

        // Aggregates are consistent.
        prop_assert!((0.0..=1.0).contains(&report.miss_ratio()));
        let energy_sum: f64 = report.jobs.iter().map(|j| j.energy).sum();
        prop_assert!((report.total_energy - energy_sum).abs() < 1e-6);
        prop_assert_eq!(
            report.deadline_misses,
            report.jobs.iter().filter(|j| !j.timely).count()
        );
    }

    /// Fault-free light task sets never miss, and energy scales with the
    /// number of simulated hyperperiods.
    #[test]
    fn fault_free_light_sets_never_miss(seed in 0u64..100) {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 400.0, 4_000, 4_000),
            PeriodicTask::new("b", 900.0, 8_000, 8_000),
        ]);
        let run = |hp: u32| {
            let config = ExecutiveConfig {
                set: &set,
                costs: CheckpointCosts::paper_scp_variant(),
                dvs: DvsConfig::paper_default(),
                lambda: 0.0,
                hyperperiods: hp,
                seed,
            };
            run_executive(&config, |_, l| Box::new(Adaptive::dvs_scp(l, 2)))
        };
        let one = run(1);
        let three = run(3);
        prop_assert_eq!(one.deadline_misses, 0);
        prop_assert_eq!(three.deadline_misses, 0);
        prop_assert!((three.total_energy - 3.0 * one.total_energy).abs() < 1e-6);
    }
}
