//! Periodic real-time task sets with checkpoint-aware feasibility analysis
//! and a job-level executive driving the EACP DMR simulator.
//!
//! The paper analyzes a single task instance; real embedded systems run
//! *periodic* task sets. This crate provides the surrounding substrate
//! (after the paper's Ref.\[2\], Zhang & Chakrabarty DATE'04 — "task
//! feasibility analysis and dynamic voltage scaling in fault-tolerant
//! real-time embedded systems"):
//!
//! * [`PeriodicTask`] / [`TaskSet`] — periodic workload model;
//! * [`feasibility`] — k-fault-tolerant worst-case execution times with
//!   optimal checkpointing, EDF utilization tests and rate-monotonic
//!   response-time analysis, all inflated by checkpoint overhead;
//! * [`executive`] — a non-preemptive EDF executive that releases jobs
//!   over a hyperperiod and runs every job through [`eacp_sim`] with an
//!   adaptive checkpointing policy, measuring deadline misses and energy.
//!
//! # Examples
//!
//! ```
//! use eacp_rtsched::{PeriodicTask, TaskSet};
//! use eacp_rtsched::feasibility::{edf_feasible, k_fault_wcet};
//! use eacp_sim::CheckpointCosts;
//!
//! let set = TaskSet::new(vec![
//!     PeriodicTask::new("telemetry", 1000.0, 5_000, 5_000),
//!     PeriodicTask::new("control", 2000.0, 10_000, 10_000),
//! ]);
//! assert_eq!(set.hyperperiod(), 10_000);
//! let costs = CheckpointCosts::paper_scp_variant();
//! assert!(edf_feasible(&set, &costs, 2, 1.0));
//! assert!(k_fault_wcet(1000.0, costs.cscp_cycles(), 2) > 1000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executive;
pub mod feasibility;

/// One periodic task: a job of `wcet_cycles` work is released every
/// `period` time units and must finish within `deadline` of its release.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTask {
    /// Human-readable name used in reports.
    pub name: String,
    /// Worst-case work per job, in cycles at the minimum speed.
    pub wcet_cycles: f64,
    /// Release period (normalized time units).
    pub period: u64,
    /// Relative deadline (normalized time units, `<= period` enforced).
    pub deadline: u64,
}

impl PeriodicTask {
    /// Creates a periodic task.
    ///
    /// # Panics
    ///
    /// Panics unless `wcet_cycles > 0`, `period > 0` and
    /// `0 < deadline <= period` (constrained deadlines).
    pub fn new(name: impl Into<String>, wcet_cycles: f64, period: u64, deadline: u64) -> Self {
        assert!(
            wcet_cycles > 0.0 && wcet_cycles.is_finite(),
            "wcet_cycles must be positive and finite"
        );
        assert!(period > 0, "period must be positive");
        assert!(
            deadline > 0 && deadline <= period,
            "deadline must be in (0, period]"
        );
        Self {
            name: name.into(),
            wcet_cycles,
            period,
            deadline,
        }
    }

    /// Raw (checkpoint-free, fault-free) utilization at speed `f`.
    pub fn utilization_at(&self, f: f64) -> f64 {
        self.wcet_cycles / f / self.period as f64
    }
}

/// An ordered collection of periodic tasks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a task set.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(tasks: Vec<PeriodicTask>) -> Self {
        assert!(!tasks.is_empty(), "a task set needs at least one task");
        Self { tasks }
    }

    /// The tasks, in insertion order.
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Least common multiple of all periods.
    pub fn hyperperiod(&self) -> u64 {
        self.tasks.iter().map(|t| t.period).fold(1, lcm)
    }

    /// Sum of raw utilizations at speed `f`.
    pub fn utilization_at(&self, f: f64) -> f64 {
        self.tasks.iter().map(|t| t.utilization_at(f)).sum()
    }
}

impl FromIterator<PeriodicTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = PeriodicTask>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperperiod_is_lcm() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 10.0, 4, 4),
            PeriodicTask::new("b", 10.0, 6, 6),
            PeriodicTask::new("c", 10.0, 10, 10),
        ]);
        assert_eq!(set.hyperperiod(), 60);
    }

    #[test]
    fn utilization_sums() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 100.0, 1000, 1000),
            PeriodicTask::new("b", 300.0, 1000, 1000),
        ]);
        assert!((set.utilization_at(1.0) - 0.4).abs() < 1e-12);
        assert!((set.utilization_at(2.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_collects() {
        let set: TaskSet = (1..=3)
            .map(|i| {
                PeriodicTask::new(
                    format!("t{i}"),
                    10.0 * i as f64,
                    100 * i as u64,
                    100 * i as u64,
                )
            })
            .collect();
        assert_eq!(set.len(), 3);
        assert_eq!(set.tasks()[2].name, "t3");
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_deadline_beyond_period() {
        PeriodicTask::new("bad", 1.0, 10, 11);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn rejects_empty_set() {
        TaskSet::new(Vec::new());
    }

    #[test]
    fn gcd_lcm_edge_cases() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 1), 7);
    }
}
