//! Checkpoint-aware feasibility tests for periodic task sets.
//!
//! All tests inflate each task's worst-case execution time with the
//! overhead of optimal k-fault-tolerant checkpointing (after the paper's
//! Ref.\[9\], Lee/Shin/Min, and Ref.\[2\]):
//!
//! ```text
//! WCET_k(N) = N + (n*)·c + k·(N/n* + c),   n* = sqrt(kN/c)
//!           = N + 2·sqrt(kNc) + kc
//! ```
//!
//! i.e. fault-free work plus checkpoint insertions plus `k` worst-case
//! re-executed intervals (each with its checkpoint redone).

use crate::TaskSet;
use eacp_sim::CheckpointCosts;

/// Worst-case execution cycles of a job of `n_cycles` work under up to `k`
/// faults with optimally spaced CSCPs of `c_cycles` each.
///
/// For `k = 0` this is `N + c` (a single verification checkpoint at the
/// end).
///
/// # Panics
///
/// Panics unless `n_cycles > 0` and `c_cycles > 0` (both finite).
///
/// # Examples
///
/// ```
/// use eacp_rtsched::feasibility::k_fault_wcet;
/// let w = k_fault_wcet(7600.0, 22.0, 5);
/// assert!((w - (7600.0 + 2.0 * (5.0_f64 * 7600.0 * 22.0).sqrt() + 110.0)).abs() < 1e-9);
/// ```
pub fn k_fault_wcet(n_cycles: f64, c_cycles: f64, k: u32) -> f64 {
    assert!(
        n_cycles > 0.0 && n_cycles.is_finite(),
        "work must be positive and finite"
    );
    assert!(
        c_cycles > 0.0 && c_cycles.is_finite(),
        "checkpoint cost must be positive and finite"
    );
    if k == 0 {
        return n_cycles + c_cycles;
    }
    let k = k as f64;
    n_cycles + 2.0 * (k * n_cycles * c_cycles).sqrt() + k * c_cycles
}

/// EDF (density) feasibility with k-fault-tolerant WCETs at speed `f`:
/// `Σ WCET_k(N_i)/f / min(D_i, T_i) <= 1`.
///
/// This is the standard sufficient density test; for implicit deadlines
/// (`D = T`) it is exact for preemptive EDF.
pub fn edf_feasible(set: &TaskSet, costs: &CheckpointCosts, k: u32, f: f64) -> bool {
    edf_density(set, costs, k, f) <= 1.0 + 1e-12
}

/// The EDF density `Σ WCET_k(N_i)/f / min(D_i, T_i)` used by
/// [`edf_feasible`].
pub fn edf_density(set: &TaskSet, costs: &CheckpointCosts, k: u32, f: f64) -> f64 {
    assert!(f > 0.0 && f.is_finite(), "speed must be positive");
    set.tasks()
        .iter()
        .map(|t| {
            let wcet_time = k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), k) / f;
            wcet_time / t.deadline.min(t.period) as f64
        })
        .sum()
}

/// Rate-monotonic response-time analysis with k-fault-tolerant WCETs at
/// speed `f`.
///
/// Tasks are prioritized by period (shorter period = higher priority).
/// Returns the per-task response times in the *original task order* when
/// every task converges within its deadline, `None` as soon as any task is
/// unschedulable.
pub fn rm_response_times(
    set: &TaskSet,
    costs: &CheckpointCosts,
    k: u32,
    f: f64,
) -> Option<Vec<f64>> {
    assert!(f > 0.0 && f.is_finite(), "speed must be positive");
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| set.tasks()[i].period);
    let wcet: Vec<f64> = set
        .tasks()
        .iter()
        .map(|t| k_fault_wcet(t.wcet_cycles, costs.cscp_cycles(), k) / f)
        .collect();

    let mut responses = vec![0.0_f64; set.len()];
    for (rank, &i) in order.iter().enumerate() {
        let own = wcet[i];
        let deadline = set.tasks()[i].deadline as f64;
        let mut r = own;
        // Fixed-point iteration: R = C_i + Σ_{hp} ceil(R/T_j)·C_j.
        for _ in 0..1000 {
            let interference: f64 = order[..rank]
                .iter()
                .map(|&j| (r / set.tasks()[j].period as f64).ceil() * wcet[j])
                .sum();
            let next = own + interference;
            if next > deadline {
                return None;
            }
            if (next - r).abs() < 1e-9 {
                r = next;
                break;
            }
            r = next;
        }
        if r > deadline {
            return None;
        }
        responses[i] = r;
    }
    Some(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeriodicTask;

    fn costs() -> CheckpointCosts {
        CheckpointCosts::paper_scp_variant()
    }

    #[test]
    fn wcet_grows_with_k() {
        let w0 = k_fault_wcet(1000.0, 22.0, 0);
        let w1 = k_fault_wcet(1000.0, 22.0, 1);
        let w5 = k_fault_wcet(1000.0, 22.0, 5);
        assert_eq!(w0, 1022.0);
        assert!(w0 < w1 && w1 < w5);
    }

    #[test]
    fn wcet_matches_closed_form() {
        let (n, c, k) = (2500.0_f64, 22.0_f64, 3u32);
        let expected = n + 2.0 * (3.0 * n * c).sqrt() + 3.0 * c;
        assert!((k_fault_wcet(n, c, k) - expected).abs() < 1e-9);
    }

    #[test]
    fn edf_density_scales_inversely_with_speed() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 1000.0, 4000, 4000),
            PeriodicTask::new("b", 1500.0, 8000, 8000),
        ]);
        let d1 = edf_density(&set, &costs(), 2, 1.0);
        let d2 = edf_density(&set, &costs(), 2, 2.0);
        assert!((d1 / d2 - 2.0).abs() < 1e-9);
        assert!(edf_feasible(&set, &costs(), 2, 1.0));
    }

    #[test]
    fn edf_rejects_overload() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 3000.0, 4000, 4000),
            PeriodicTask::new("b", 3000.0, 8000, 8000),
        ]);
        // Raw utilization 0.75 + 0.375 > 1 even before overhead.
        assert!(!edf_feasible(&set, &costs(), 2, 1.0));
        // But the fast speed level rescues it.
        assert!(edf_feasible(&set, &costs(), 2, 2.0));
    }

    #[test]
    fn rm_analysis_accepts_light_set() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("fast", 500.0, 4000, 4000),
            PeriodicTask::new("slow", 1000.0, 16_000, 16_000),
        ]);
        let r = rm_response_times(&set, &costs(), 1, 1.0).expect("schedulable");
        // Highest-priority task's response = its own WCET.
        let w_fast = k_fault_wcet(500.0, 22.0, 1);
        assert!((r[0] - w_fast).abs() < 1e-9);
        // Lower-priority task suffers interference.
        assert!(r[1] > k_fault_wcet(1000.0, 22.0, 1));
        assert!(r[1] <= 16_000.0);
    }

    #[test]
    fn rm_interference_accounts_for_multiple_releases() {
        // Low-priority response spans several high-priority periods.
        let set = TaskSet::new(vec![
            PeriodicTask::new("hp", 400.0, 1000, 1000),
            PeriodicTask::new("lp", 1500.0, 10_000, 10_000),
        ]);
        let r = rm_response_times(&set, &costs(), 0, 1.0).expect("schedulable");
        let w_hp = k_fault_wcet(400.0, 22.0, 0); // 422
        let w_lp = k_fault_wcet(1500.0, 22.0, 0); // 1522
                                                  // R = 1522 + ceil(R/1000)·422: 1522 → 2366 → 2788 → fixed point
                                                  // (the response window spans three high-priority releases).
        assert!((r[1] - (w_lp + 3.0 * w_hp)).abs() < 1e-9, "r = {}", r[1]);
    }

    #[test]
    fn rm_rejects_unschedulable() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("hp", 900.0, 1000, 1000),
            PeriodicTask::new("lp", 500.0, 5000, 5000),
        ]);
        assert!(rm_response_times(&set, &costs(), 1, 1.0).is_none());
    }

    #[test]
    fn k_zero_rm_equals_plain_rta() {
        let set = TaskSet::new(vec![PeriodicTask::new("solo", 100.0, 1000, 1000)]);
        let r = rm_response_times(&set, &costs(), 0, 1.0).unwrap();
        assert!((r[0] - 122.0).abs() < 1e-9);
    }
}

/// The lowest DVS level at which the task set passes the EDF density test
/// with k-fault-tolerant WCETs — the speed-assignment step of the paper's
/// Ref.\[2\] (run as slow as feasibility allows to save energy).
///
/// Returns `None` when even the fastest level is infeasible.
pub fn minimum_feasible_speed(
    set: &TaskSet,
    costs: &CheckpointCosts,
    k: u32,
    dvs: &eacp_energy::DvsConfig,
) -> Option<usize> {
    (0..dvs.len()).find(|&idx| edf_feasible(set, costs, k, dvs.level(idx).frequency))
}

#[cfg(test)]
mod speed_tests {
    use super::*;
    use crate::PeriodicTask;
    use eacp_energy::DvsConfig;

    #[test]
    fn light_set_runs_slow() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 1000.0, 4000, 4000)]);
        let dvs = DvsConfig::paper_default();
        assert_eq!(
            minimum_feasible_speed(&set, &CheckpointCosts::paper_scp_variant(), 2, &dvs),
            Some(0)
        );
    }

    #[test]
    fn heavy_set_needs_fast_level() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 3000.0, 4000, 4000),
            PeriodicTask::new("b", 3000.0, 8000, 8000),
        ]);
        let dvs = DvsConfig::paper_default();
        assert_eq!(
            minimum_feasible_speed(&set, &CheckpointCosts::paper_scp_variant(), 2, &dvs),
            Some(1)
        );
    }

    #[test]
    fn overload_is_infeasible_everywhere() {
        let set = TaskSet::new(vec![PeriodicTask::new("a", 9000.0, 4000, 4000)]);
        let dvs = DvsConfig::paper_default();
        assert_eq!(
            minimum_feasible_speed(&set, &CheckpointCosts::paper_scp_variant(), 2, &dvs),
            None
        );
    }
}
