//! A non-preemptive EDF executive running periodic jobs through the DMR
//! simulator.
//!
//! Jobs are released at multiples of their task's period over one (or more)
//! hyperperiods. The executive picks the released job with the earliest
//! absolute deadline, builds a fresh checkpointing policy for it, and runs
//! it to completion (or abort) in the [`eacp_sim`] executor. Energy and
//! deadline misses are accumulated per task.

use crate::TaskSet;
use eacp_energy::DvsConfig;
use eacp_faults::{DeterministicFaults, FaultProcess, PoissonProcess};
use eacp_sim::{
    CheckpointCosts, Executor, ExecutorOptions, ExecutorScratch, NoopObserver, Observer, Policy,
    Scenario, TaskSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of one released job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index of the task in the [`TaskSet`].
    pub task: usize,
    /// Release time.
    pub release: f64,
    /// Absolute deadline.
    pub absolute_deadline: f64,
    /// Time the executive started the job (>= release).
    pub started: f64,
    /// Time the job finished, aborted or was cut off.
    pub finished: f64,
    /// Whether the job completed by its absolute deadline.
    pub timely: bool,
    /// Energy consumed by this job.
    pub energy: f64,
    /// Faults observed during this job.
    pub faults: u32,
    /// Rollbacks taken by this job.
    pub rollbacks: u32,
    /// Store checkpoints (SCP) executed by this job.
    pub store_checkpoints: u32,
    /// Compare checkpoints (CCP) executed by this job.
    pub compare_checkpoints: u32,
    /// Compare-and-store checkpoints (CSCP) executed by this job.
    pub compare_store_checkpoints: u32,
}

/// Aggregated result of a hyperperiod simulation.
#[derive(Debug, Clone, Default)]
pub struct ExecutiveReport {
    /// Every job in release order (ties broken by task index).
    pub jobs: Vec<JobRecord>,
    /// Total energy over the horizon.
    pub total_energy: f64,
    /// Jobs that missed their deadline (aborted, late or never started in
    /// time).
    pub deadline_misses: usize,
}

impl ExecutiveReport {
    /// Deadline-miss ratio over all jobs (0 when no jobs were released).
    pub fn miss_ratio(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.deadline_misses as f64 / self.jobs.len() as f64
        }
    }

    /// Jobs belonging to one task.
    pub fn jobs_of(&self, task: usize) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(move |j| j.task == task)
    }
}

/// Configuration of the executive simulation.
pub struct ExecutiveConfig<'a> {
    /// The periodic workload.
    pub set: &'a TaskSet,
    /// Checkpoint costs shared by all tasks.
    pub costs: CheckpointCosts,
    /// DVS levels shared by all tasks.
    pub dvs: DvsConfig,
    /// Fault arrival rate (global Poisson stream across the horizon).
    pub lambda: f64,
    /// Number of hyperperiods to simulate.
    pub hyperperiods: u32,
    /// RNG seed for the fault stream.
    pub seed: u64,
}

/// Workload-level inputs of an executive run, independent of where the
/// fault stream comes from. This is the seedable, spec-drivable shape:
/// `eacp_exec::run_executive` builds one from an
/// `eacp_spec::ExecutiveSpec` and supplies the stream it built from the
/// spec's `FaultSpec` + seed.
pub struct ExecutiveParams<'a> {
    /// The periodic workload.
    pub set: &'a TaskSet,
    /// Checkpoint costs shared by all tasks.
    pub costs: CheckpointCosts,
    /// DVS levels shared by all tasks.
    pub dvs: DvsConfig,
    /// Number of hyperperiods to simulate.
    pub hyperperiods: u32,
    /// Executor semantics every job runs under.
    pub options: ExecutorOptions,
}

/// Runs the executive: jobs scheduled non-preemptively by EDF, each
/// executed under a policy built by `make_policy(task_index, lambda)`.
///
/// The fault stream is global wall-clock Poisson seeded from
/// `config.seed`; each job sees the arrivals that land inside its
/// execution window, which preserves the burstiness across job
/// boundaries. This is a convenience wrapper over
/// [`run_executive_stream`].
///
/// # Panics
///
/// Panics if `hyperperiods == 0`.
pub fn run_executive<F>(config: &ExecutiveConfig<'_>, mut make_policy: F) -> ExecutiveReport
where
    F: FnMut(usize, f64) -> Box<dyn Policy>,
{
    let params = ExecutiveParams {
        set: config.set,
        costs: config.costs,
        dvs: config.dvs.clone(),
        hyperperiods: config.hyperperiods,
        options: ExecutorOptions::default(),
    };
    let mut faults = PoissonProcess::new(config.lambda, StdRng::seed_from_u64(config.seed));
    run_executive_stream(
        &params,
        &mut faults,
        |task| make_policy(task, config.lambda),
        &mut NoopObserver,
    )
}

/// Supplies the checkpointing policy each dispatched job runs under.
///
/// The executive calls [`policy_for_job`](PolicyProvider::policy_for_job)
/// once per dispatched job and uses the returned policy for that job only.
/// Pooled implementations keep one policy instance per task and reset it
/// in place — no allocation per job — while the legacy closure path boxes
/// a fresh policy each time. Either way the returned policy must be in its
/// initial state, so both paths drive the executor identically.
pub trait PolicyProvider {
    /// Returns the (freshly reset) policy for the next job of `task`.
    fn policy_for_job(&mut self, task: usize) -> &mut dyn Policy;
}

/// Adapts the legacy `FnMut(usize) -> Box<dyn Policy>` factory to
/// [`PolicyProvider`]: boxes a fresh policy per job, parked in a slot so a
/// borrow can be handed out.
struct FreshPolicies<MK> {
    make: MK,
    slot: Option<Box<dyn Policy>>,
}

impl<MK: FnMut(usize) -> Box<dyn Policy>> PolicyProvider for FreshPolicies<MK> {
    fn policy_for_job(&mut self, task: usize) -> &mut dyn Policy {
        self.slot = Some((self.make)(task));
        // audit:allow(panic): the slot was filled on the line above.
        self.slot.as_deref_mut().expect("slot just filled")
    }
}

/// One pending release: a job waiting to be admitted or dispatched.
#[derive(Debug, Clone, Copy)]
struct Pending {
    task: usize,
    release: f64,
    abs_deadline: f64,
}

/// Reusable working memory for [`run_executive_pooled`].
///
/// An executive horizon needs a release list, a ready queue, fault-window
/// buffers, a job log, one [`DeterministicFaults`] window, and the
/// engine's [`ExecutorScratch`] — all of it reusable between horizons.
/// Monte-Carlo loops allocate one scratch per block and thread it through
/// every seeded horizon: buffers are *cleared*, never reallocated, and
/// their capacities converge to the workload's steady state after the
/// first horizon. The executive case of the `eacp-exec` zero-alloc
/// witness checks this holds.
#[derive(Debug)]
pub struct ExecutiveScratch {
    releases: Vec<Pending>,
    ready: Vec<Pending>,
    carry: Vec<f64>,
    local: Vec<f64>,
    jobs: Vec<JobRecord>,
    window: DeterministicFaults,
    exec: ExecutorScratch,
}

impl Default for ExecutiveScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutiveScratch {
    /// Creates an empty scratch (the first horizon sizes every buffer).
    // audit:setup: the scratch exists so horizons can reuse these buffers
    // — they are allocated here once and only cleared afterwards.
    pub fn new() -> Self {
        Self {
            releases: Vec::new(),
            ready: Vec::new(),
            // The release list, ready queue and job log converge to the
            // workload's (fixed) job count after the first horizon, but
            // the fault-window buffers track per-window arrival counts —
            // heavy-tailed processes (Weibull shape < 1, bursts) can
            // produce a window denser than anything seen during warmup.
            // Pre-size them past any window the paper's scenarios reach
            // so later horizons never regrow them; the executive case of
            // the `eacp-exec` zero-alloc witness checks this holds.
            carry: Vec::with_capacity(256),
            local: Vec::with_capacity(256),
            jobs: Vec::new(),
            window: DeterministicFaults::with_capacity(256),
            exec: ExecutorScratch::new(),
        }
    }

    /// The last horizon's job records, in release order (ties broken by
    /// task index) — what [`run_executive_pooled`] leaves behind.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Folds the last horizon's job log into an [`ExecutiveReport`],
    /// consuming the scratch.
    fn into_report(self) -> ExecutiveReport {
        let total_energy = self.jobs.iter().map(|j| j.energy).sum();
        let deadline_misses = self.jobs.iter().filter(|j| !j.timely).count();
        ExecutiveReport {
            jobs: self.jobs,
            total_energy,
            deadline_misses,
        }
    }
}

/// Runs the executive over an explicit fault stream, streaming every
/// engine event of every job into `observer`.
///
/// This is the general entry point: the caller owns the fault process
/// (any [`FaultProcess`], seeded however it likes — the reproducibility
/// contract is *same stream + same params ⇒ identical report*) and the
/// policy factory `make_policy(task_index)`. Jobs are released at period
/// multiples over `params.hyperperiods` hyperperiods and dispatched
/// non-preemptively by earliest absolute deadline.
///
/// Convenience wrapper over [`run_executive_pooled`] with per-call working
/// memory and fresh-boxed policies; replication loops use the pooled core
/// directly.
///
/// # Panics
///
/// Panics if `params.hyperperiods == 0`.
pub fn run_executive_stream<FP, MK, O>(
    params: &ExecutiveParams<'_>,
    faults: &mut FP,
    make_policy: MK,
    observer: &mut O,
) -> ExecutiveReport
where
    FP: FaultProcess + ?Sized,
    MK: FnMut(usize) -> Box<dyn Policy>,
    O: Observer + ?Sized,
{
    let mut scratch = ExecutiveScratch::new();
    let mut scenario = scenario_template(params);
    let mut policies = FreshPolicies {
        make: make_policy,
        slot: None,
    };
    run_executive_pooled(
        params,
        &mut scenario,
        faults,
        &mut policies,
        observer,
        &mut scratch,
    );
    scratch.into_report()
}

/// Builds the per-job scenario template [`run_executive_pooled`] expects:
/// `params`' costs and DVS table around a placeholder task (the core
/// overwrites `scenario.task` before every job).
// audit:setup: one template per block — the DVS level table is cloned
// here once; horizons only mutate the `task` field in place.
pub fn scenario_template(params: &ExecutiveParams<'_>) -> Scenario {
    Scenario::new(TaskSpec::new(1.0, 1.0), params.costs, params.dvs.clone())
}

/// The pooled executive core: one EDF horizon, allocation-free after
/// warmup.
///
/// Behaviorally identical to [`run_executive_stream`] — same release
/// order, same EDF tie-breaks, same fault-window carry semantics, same
/// job records to the last bit — but every piece of working memory is
/// caller-owned: `scenario` is a template whose `task` field is rewritten
/// per job (costs and DVS must match the workload — see
/// [`scenario_template`]), `policies` hands out per-task policies, and
/// `scratch` pools every buffer including the engine scratch. The job log
/// is left in [`ExecutiveScratch::jobs`], release-ordered.
///
/// # Panics
///
/// Panics if `params.hyperperiods == 0`.
pub fn run_executive_pooled<FP, O>(
    params: &ExecutiveParams<'_>,
    scenario: &mut Scenario,
    faults: &mut FP,
    policies: &mut dyn PolicyProvider,
    observer: &mut O,
    scratch: &mut ExecutiveScratch,
) where
    FP: FaultProcess + ?Sized,
    O: Observer + ?Sized,
{
    assert!(params.hyperperiods > 0, "at least one hyperperiod");
    debug_assert!(
        scenario.costs == params.costs && scenario.dvs == params.dvs,
        "scenario template disagrees with the executive params"
    );
    let horizon = (params.set.hyperperiod() * params.hyperperiods as u64) as f64;

    let ExecutiveScratch {
        releases,
        ready,
        carry,
        local,
        jobs: done,
        window,
        exec,
    } = scratch;

    // Build the release list. Keys (release, task) are unique per job, so
    // the unstable sort is order-identical to a stable one.
    releases.clear();
    for (idx, t) in params.set.tasks().iter().enumerate() {
        let mut r = 0u64;
        while (r as f64) < horizon {
            releases.push(Pending {
                task: idx,
                release: r as f64,
                abs_deadline: (r + t.deadline) as f64,
            });
            r += t.period;
        }
    }
    releases.sort_unstable_by(|a, b| a.release.total_cmp(&b.release).then(a.task.cmp(&b.task)));

    // Global fault stream shifted per job window. A job's collection
    // window extends to its deadline, but the job may finish sooner —
    // arrivals it never experienced are carried over (as absolute times)
    // for whichever job runs next, so back-to-back jobs see the complete
    // stream.
    let mut next_fault = faults.next_fault();
    carry.clear();

    let mut now = 0.0_f64;
    done.clear();
    ready.clear();
    let mut cursor = 0usize;

    loop {
        // Admit releases up to `now`.
        while cursor < releases.len() && releases[cursor].release <= now + 1e-9 {
            ready.push(releases[cursor]);
            cursor += 1;
        }
        if ready.is_empty() {
            match releases.get(cursor) {
                Some(&p) => {
                    cursor += 1;
                    now = now.max(p.release);
                    ready.push(p);
                    continue;
                }
                None => break,
            }
        }
        // EDF: earliest absolute deadline first. The refill above either
        // pushed a job or broke out of the loop, but spelling the empty
        // case as a loop exit keeps this panic-free by construction.
        let Some(best) = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.abs_deadline.total_cmp(&b.abs_deadline))
            .map(|(i, _)| i)
        else {
            break;
        };
        let job = ready.swap_remove(best);
        let task = &params.set.tasks()[job.task];

        let started = now;
        let rel_deadline = job.abs_deadline - started;
        if rel_deadline <= 0.0 {
            // Hopeless: charge a miss without running.
            done.push(JobRecord {
                task: job.task,
                release: job.release,
                absolute_deadline: job.abs_deadline,
                started,
                finished: started,
                timely: false,
                energy: 0.0,
                faults: 0,
                rollbacks: 0,
                store_checkpoints: 0,
                compare_checkpoints: 0,
                compare_store_checkpoints: 0,
            });
            continue;
        }
        scenario.task = TaskSpec::new(task.wcet_cycles, rel_deadline);
        // Faults inside this job's window, re-based to job-local time:
        // first the carried-over arrivals earlier jobs never reached
        // (those before `started` landed in idle time and strike nothing),
        // then the global stream. The window is generous — the job cannot
        // run longer than its relative deadline (the executor cuts off
        // there) — and whatever the job does not experience is returned
        // to `carry` below.
        local.clear();
        let window_end = started + rel_deadline + 1.0;
        carry.retain(|&t| {
            if t >= window_end {
                return true;
            }
            if t >= started {
                local.push(t - started);
            }
            false
        });
        while next_fault < window_end {
            if next_fault >= started {
                local.push(next_fault - started);
            }
            next_fault = faults.next_fault();
        }
        // Carried times predate everything still in the stream, and both
        // sources are ascending — but interleavings across jobs can leave
        // `carry` unsorted, so restore the order the executor expects.
        // (f64 keys: unstable sort is bit-identical to stable.)
        local.sort_unstable_by(f64::total_cmp);
        window.reload(local);
        let policy = policies.policy_for_job(job.task);
        let out = Executor::new(scenario)
            .with_options(params.options)
            .run_with_scratch(exec, policy, window, observer);

        // Arrivals strictly after the finish were never experienced:
        // hand them to subsequent jobs.
        carry.extend(
            local
                .iter()
                .filter(|&&t| t > out.finish_time)
                .map(|&t| started + t),
        );
        carry.sort_unstable_by(f64::total_cmp);

        let finished = started + out.finish_time;
        done.push(JobRecord {
            task: job.task,
            release: job.release,
            absolute_deadline: job.abs_deadline,
            started,
            finished,
            timely: out.timely,
            energy: out.energy,
            faults: out.faults,
            rollbacks: out.rollbacks,
            store_checkpoints: out.store_checkpoints,
            compare_checkpoints: out.compare_checkpoints,
            compare_store_checkpoints: out.compare_store_checkpoints,
        });
        now = finished.max(started);
    }

    done.sort_unstable_by(|a, b| a.release.total_cmp(&b.release).then(a.task.cmp(&b.task)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeriodicTask;
    use eacp_core::policies::Adaptive;

    fn light_set() -> TaskSet {
        TaskSet::new(vec![
            PeriodicTask::new("sensor", 500.0, 4000, 4000),
            PeriodicTask::new("control", 1200.0, 8000, 8000),
        ])
    }

    fn config(set: &TaskSet, lambda: f64, hyperperiods: u32) -> ExecutiveConfig<'_> {
        ExecutiveConfig {
            set,
            costs: CheckpointCosts::paper_scp_variant(),
            dvs: DvsConfig::paper_default(),
            lambda,
            hyperperiods,
            seed: 42,
        }
    }

    #[test]
    fn fault_free_hyperperiod_has_no_misses() {
        let set = light_set();
        let cfg = config(&set, 0.0, 1);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 2)));
        // 2 jobs of "sensor" (period 4000 in hyperperiod 8000) + 1 "control".
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.miss_ratio(), 0.0);
        assert!(report.total_energy > 0.0);
        assert_eq!(report.jobs_of(0).count(), 2);
        assert_eq!(report.jobs_of(1).count(), 1);
    }

    #[test]
    fn multiple_hyperperiods_scale_job_count() {
        let set = light_set();
        let cfg = config(&set, 0.0, 3);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 2)));
        assert_eq!(report.jobs.len(), 9);
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        // Both released at t = 0; the shorter-deadline task must start
        // first and therefore finish first.
        let set = TaskSet::new(vec![
            PeriodicTask::new("late", 500.0, 10_000, 10_000),
            PeriodicTask::new("urgent", 500.0, 10_000, 2_000),
        ]);
        let cfg = config(&set, 0.0, 1);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 1)));
        let urgent = report.jobs_of(1).next().unwrap();
        let late = report.jobs_of(0).next().unwrap();
        assert!(urgent.finished < late.finished);
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn faults_cause_rollbacks_but_jobs_recover() {
        // High enough λ that the expected fault count inside the (short)
        // busy windows is ≫ 1 for any healthy RNG stream, not just one
        // lucky seed.
        let set = light_set();
        let cfg = config(&set, 2e-3, 4);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 2)));
        let total_faults: u32 = report.jobs.iter().map(|j| j.faults).sum();
        assert!(total_faults > 0, "the seed should inject faults");
        // Light load: adaptive checkpointing keeps all deadlines.
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn overload_produces_misses() {
        let set = TaskSet::new(vec![
            PeriodicTask::new("a", 3500.0, 4000, 4000),
            PeriodicTask::new("b", 3500.0, 4000, 4000),
        ]);
        let cfg = config(&set, 0.0, 1);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 1)));
        assert!(report.deadline_misses > 0);
        assert!(report.miss_ratio() > 0.0);
    }

    #[test]
    fn faults_after_a_jobs_finish_carry_over_to_the_next_job() {
        // Job A (task 0) finishes around t ≈ 560, long before its t = 4000
        // deadline; job B (task 1) then occupies t ≈ 560..2000. A fault at
        // t = 1000 lands inside A's collection window but after A's
        // finish — it must strike B, not vanish with A's window.
        let set = light_set();
        let params = ExecutiveParams {
            set: &set,
            costs: CheckpointCosts::paper_scp_variant(),
            dvs: DvsConfig::paper_default(),
            hyperperiods: 1,
            options: ExecutorOptions::default(),
        };
        let mut faults = eacp_faults::DeterministicFaults::new(vec![1_000.0]);
        let report = run_executive_stream(
            &params,
            &mut faults,
            |_| Box::new(Adaptive::dvs_scp(1e-3, 2)),
            &mut NoopObserver,
        );
        let total: u32 = report.jobs.iter().map(|j| j.faults).sum();
        assert_eq!(total, 1, "the carried fault must be experienced once");
        assert_eq!(report.jobs_of(0).map(|j| j.faults).sum::<u32>(), 0);
        assert_eq!(report.jobs_of(1).map(|j| j.faults).sum::<u32>(), 1);
    }

    #[test]
    fn idle_faults_strike_nothing() {
        // One tiny job finishing almost immediately; a fault long after
        // the finish but before the deadline lands in idle time and must
        // not be charged to anyone.
        let set = TaskSet::new(vec![PeriodicTask::new("tiny", 10.0, 100_000, 10_000)]);
        let params = ExecutiveParams {
            set: &set,
            costs: CheckpointCosts::paper_scp_variant(),
            dvs: DvsConfig::paper_default(),
            hyperperiods: 1,
            options: ExecutorOptions::default(),
        };
        let mut faults = eacp_faults::DeterministicFaults::new(vec![5_000.0]);
        let report = run_executive_stream(
            &params,
            &mut faults,
            |_| Box::new(Adaptive::dvs_scp(1e-3, 1)),
            &mut NoopObserver,
        );
        assert_eq!(report.jobs.iter().map(|j| j.faults).sum::<u32>(), 0);
        assert_eq!(report.deadline_misses, 0);
    }

    #[test]
    fn pooled_core_matches_stream_wrapper_bit_for_bit() {
        // The pooled core (caller-owned scratch, in-place scenario and
        // fault-window reuse) must reproduce the wrapper's report exactly,
        // including across reuse of one scratch for several horizons.
        let set = light_set();
        let params = ExecutiveParams {
            set: &set,
            costs: CheckpointCosts::paper_scp_variant(),
            dvs: DvsConfig::paper_default(),
            hyperperiods: 4,
            options: ExecutorOptions::default(),
        };
        struct PooledAdaptive(Vec<Adaptive>);
        impl PolicyProvider for PooledAdaptive {
            fn policy_for_job(&mut self, task: usize) -> &mut dyn Policy {
                self.0[task] = Adaptive::dvs_scp(2e-3, 2);
                &mut self.0[task]
            }
        }
        let mut scratch = ExecutiveScratch::new();
        let mut scenario = scenario_template(&params);
        let mut provider =
            PooledAdaptive(vec![Adaptive::dvs_scp(2e-3, 2), Adaptive::dvs_scp(2e-3, 2)]);
        for seed in [42u64, 43, 44] {
            let mut faults = PoissonProcess::new(2e-3, rand::rngs::StdRng::seed_from_u64(seed));
            run_executive_pooled(
                &params,
                &mut scenario,
                &mut faults,
                &mut provider,
                &mut NoopObserver,
                &mut scratch,
            );
            let mut faults = PoissonProcess::new(2e-3, rand::rngs::StdRng::seed_from_u64(seed));
            let reference = run_executive_stream(
                &params,
                &mut faults,
                |_| Box::new(Adaptive::dvs_scp(2e-3, 2)),
                &mut NoopObserver,
            );
            assert_eq!(scratch.jobs(), reference.jobs.as_slice(), "seed {seed}");
            assert!(scratch
                .jobs()
                .iter()
                .zip(reference.jobs.iter())
                .all(|(a, b)| a.energy.to_bits() == b.energy.to_bits()
                    && a.finished.to_bits() == b.finished.to_bits()));
        }
    }

    #[test]
    fn idle_gaps_are_skipped() {
        // One tiny task with a long period: the executive must jump across
        // idle time instead of spinning.
        let set = TaskSet::new(vec![PeriodicTask::new("rare", 10.0, 100_000, 1_000)]);
        let cfg = config(&set, 0.0, 2);
        let report = run_executive(&cfg, |_, l| Box::new(Adaptive::dvs_scp(l, 1)));
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.deadline_misses, 0);
        assert!((report.jobs[1].release - 100_000.0).abs() < 1e-9);
    }
}
