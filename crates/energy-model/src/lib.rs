//! DVS speed levels and energy accounting for the EACP workspace.
//!
//! The paper's processor model: a variable-voltage CPU with two speeds
//! `f1 = 1` (normalized minimum) and `f2 = 2·f1`, negligible switching time,
//! and energy measured by "summing the product of the square of the voltage
//! and the number of computation cycles over all the segments of the task",
//! over both processors of the DMR pair.
//!
//! The paper does not state the absolute supply voltages. Calibrating
//! against the energy scales it reports (≈39k for an all-slow run of a
//! `U = 0.76` task, ≈149k for the all-fast variant — see `DESIGN.md` §2.4)
//! gives per-processor `V² = 2` at `f1` and `V² = 4` at `f2`
//! (`V1 ≈ 1.41 V`, `V2 = 2.0 V`). [`DvsConfig::paper_default`] encodes
//! exactly that; everything is configurable for sensitivity studies.
//!
//! # Examples
//!
//! ```
//! use eacp_energy::{DvsConfig, EnergyMeter};
//!
//! let dvs = DvsConfig::paper_default();
//! let mut meter = EnergyMeter::new(2); // DMR: two processors
//! meter.record_cycles(1000.0, dvs.level(0));
//! meter.record_cycles(500.0, dvs.level(1));
//! // 2·(1000·2 + 500·4) = 8000 (to rounding: V1 = √2 squares to ~2)
//! assert!((meter.total() - 8000.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eacp_numerics::NeumaierSum;

/// One operating point of a variable-voltage processor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeedLevel {
    /// Clock frequency in cycles per (normalized) time unit. The paper
    /// normalizes the minimum speed to 1.
    pub frequency: f64,
    /// Supply voltage in volts; energy per cycle is `voltage²`.
    pub voltage: f64,
}

impl SpeedLevel {
    /// Creates a speed level.
    ///
    /// # Panics
    ///
    /// Panics unless both `frequency` and `voltage` are positive and finite.
    pub fn new(frequency: f64, voltage: f64) -> Self {
        assert!(
            frequency > 0.0 && frequency.is_finite(),
            "frequency must be positive and finite"
        );
        assert!(
            voltage > 0.0 && voltage.is_finite(),
            "voltage must be positive and finite"
        );
        Self { frequency, voltage }
    }

    /// Energy consumed per executed cycle (`voltage²`), per processor.
    pub fn energy_per_cycle(&self) -> f64 {
        self.voltage * self.voltage
    }

    /// Wall-clock time to execute `cycles` cycles at this level.
    pub fn time_for_cycles(&self, cycles: f64) -> f64 {
        cycles / self.frequency
    }

    /// Cycles executed in `time` wall-clock units at this level.
    pub fn cycles_in_time(&self, time: f64) -> f64 {
        time * self.frequency
    }
}

/// A dynamic-voltage-scaling configuration: an ordered set of speed levels
/// (slowest first) plus speed-switch overheads.
///
/// The paper assumes the processor "can switch its speed in a negligible
/// amount of time"; both overheads default to zero but are configurable for
/// sensitivity experiments.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DvsConfig {
    levels: Vec<SpeedLevel>,
    /// Wall-clock time consumed by one speed switch.
    pub switch_time: f64,
    /// Energy consumed by one speed switch (per processor).
    pub switch_energy: f64,
}

impl DvsConfig {
    /// Creates a configuration from levels sorted by ascending frequency.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or not strictly ascending in frequency.
    pub fn new(levels: Vec<SpeedLevel>) -> Self {
        assert!(!levels.is_empty(), "at least one speed level is required");
        assert!(
            levels.windows(2).all(|w| w[0].frequency < w[1].frequency),
            "levels must be strictly ascending in frequency"
        );
        Self {
            levels,
            switch_time: 0.0,
            switch_energy: 0.0,
        }
    }

    /// Two-level configuration `f2 = 2·f1` with `f1` normalized to 1.
    pub fn two_speed(v1: f64, v2: f64) -> Self {
        Self::new(vec![SpeedLevel::new(1.0, v1), SpeedLevel::new(2.0, v2)])
    }

    /// The configuration calibrated to the paper's energy scale:
    /// `f1 = 1, V1 = √2` and `f2 = 2, V2 = 2` (per-processor `V² ∈ {2, 4}`).
    pub fn paper_default() -> Self {
        Self::two_speed(std::f64::consts::SQRT_2, 2.0)
    }

    /// Single fixed-speed configuration (no DVS).
    pub fn fixed(level: SpeedLevel) -> Self {
        Self::new(vec![level])
    }

    /// Number of levels.
    #[inline]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether there are no levels (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn level(&self, index: usize) -> SpeedLevel {
        self.levels[index]
    }

    /// All levels, slowest first.
    pub fn levels(&self) -> &[SpeedLevel] {
        &self.levels
    }

    /// Index of the slowest level (always 0).
    pub fn slowest(&self) -> usize {
        0
    }

    /// Index of the fastest level.
    pub fn fastest(&self) -> usize {
        self.levels.len() - 1
    }
}

impl Default for DvsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Accumulates energy over task segments: `Σ processors · V² · cycles`.
///
/// Also tracks per-level cycle counts so experiments can report how much of
/// the task ran at each speed (the DVS "downshift fraction").
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    processors: u32,
    total: NeumaierSum,
    cycles_per_level: Vec<(f64, f64)>, // (frequency key, cycles)
    /// Index of the last level bucket hit — segments overwhelmingly repeat
    /// the previous segment's speed, so the per-level find is usually one
    /// probe instead of a scan.
    last_level: usize,
    switches: u64,
}

impl EnergyMeter {
    /// Creates a meter for `processors` redundant processors (2 for DMR).
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "at least one processor is required");
        Self {
            processors,
            total: NeumaierSum::new(),
            cycles_per_level: Vec::new(),
            last_level: 0,
            switches: 0,
        }
    }

    /// Resets the meter to its just-constructed state for `processors`,
    /// keeping the per-level table's capacity — replication loops reuse
    /// one meter instead of allocating one per run.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero.
    pub fn reset(&mut self, processors: u32) {
        assert!(processors > 0, "at least one processor is required");
        self.processors = processors;
        self.total = NeumaierSum::new();
        self.cycles_per_level.clear();
        self.last_level = 0;
        self.switches = 0;
    }

    /// Records `cycles` executed (per processor) at `level`.
    ///
    /// Negative or non-finite cycle counts are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or not finite.
    #[inline]
    pub fn record_cycles(&mut self, cycles: f64, level: SpeedLevel) {
        assert!(
            cycles >= 0.0 && cycles.is_finite(),
            "cycle count must be non-negative and finite"
        );
        self.total
            .add(self.processors as f64 * cycles * level.energy_per_cycle());
        // Fast path: the bucket hit by the previous call. Bucket additions
        // stay per-level in call order either way, so totals per level are
        // bit-identical to a plain front-to-back find.
        if let Some((f, c)) = self.cycles_per_level.get_mut(self.last_level) {
            if *f == level.frequency {
                *c += cycles;
                return;
            }
        }
        self.record_level_slow(cycles, level.frequency);
    }

    /// Per-level bookkeeping when the last-hit hint misses: front-to-back
    /// find (first match, same as the pre-hint behavior), inserting a new
    /// bucket for a never-seen frequency. The push happens at most once
    /// per level per run; `reset` keeps the capacity, so pooled
    /// replication loops do not allocate here after warmup.
    #[cold]
    fn record_level_slow(&mut self, cycles: f64, frequency: f64) {
        match self
            .cycles_per_level
            .iter()
            .position(|(f, _)| *f == frequency)
        {
            Some(i) => {
                self.cycles_per_level[i].1 += cycles;
                self.last_level = i;
            }
            None => {
                self.last_level = self.cycles_per_level.len();
                self.cycles_per_level.push((frequency, cycles));
            }
        }
    }

    /// Records one speed switch costing `energy` per processor.
    pub fn record_switch(&mut self, energy: f64) {
        self.switches += 1;
        self.total.add(self.processors as f64 * energy);
    }

    /// Total energy so far.
    // Non-generic and read per executed operation from other crates:
    // inline so a discarded reading costs nothing instead of a call.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total.value()
    }

    /// Number of processors being accounted.
    pub fn processors(&self) -> u32 {
        self.processors
    }

    /// Number of recorded speed switches.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Per-processor cycles executed at the level with frequency `frequency`.
    #[inline]
    pub fn cycles_at_frequency(&self, frequency: f64) -> f64 {
        self.cycles_per_level
            .iter()
            .find(|(f, _)| *f == frequency)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Total per-processor cycles executed at any level.
    #[inline]
    pub fn total_cycles(&self) -> f64 {
        self.cycles_per_level.iter().map(|(_, c)| c).sum()
    }

    /// Fraction of cycles executed at the given frequency (0 when idle).
    pub fn fraction_at_frequency(&self, frequency: f64) -> f64 {
        let total = self.total_cycles();
        if total == 0.0 {
            0.0
        } else {
            self.cycles_at_frequency(frequency) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_calibration() {
        let dvs = DvsConfig::paper_default();
        assert_eq!(dvs.len(), 2);
        let f1 = dvs.level(0);
        let f2 = dvs.level(1);
        assert_eq!(f1.frequency, 1.0);
        assert_eq!(f2.frequency, 2.0);
        assert!((f1.energy_per_cycle() - 2.0).abs() < 1e-12);
        assert!((f2.energy_per_cycle() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_cycle_round_trip() {
        let l = SpeedLevel::new(2.0, 1.0);
        assert_eq!(l.time_for_cycles(10.0), 5.0);
        assert_eq!(l.cycles_in_time(5.0), 10.0);
    }

    #[test]
    fn meter_accumulates_both_processors() {
        let dvs = DvsConfig::paper_default();
        let mut m = EnergyMeter::new(2);
        m.record_cycles(100.0, dvs.level(0));
        assert!((m.total() - 2.0 * 100.0 * 2.0).abs() < 1e-9);
        m.record_cycles(100.0, dvs.level(1));
        assert!((m.total() - (400.0 + 2.0 * 100.0 * 4.0)).abs() < 1e-9);
        assert_eq!(m.total_cycles(), 200.0);
        assert_eq!(m.fraction_at_frequency(1.0), 0.5);
        assert_eq!(m.fraction_at_frequency(2.0), 0.5);
        assert_eq!(m.fraction_at_frequency(3.0), 0.0);
    }

    #[test]
    fn meter_switch_accounting() {
        let mut m = EnergyMeter::new(2);
        m.record_switch(5.0);
        assert_eq!(m.switches(), 1);
        assert_eq!(m.total(), 10.0);
    }

    #[test]
    fn single_processor_meter() {
        let mut m = EnergyMeter::new(1);
        m.record_cycles(10.0, SpeedLevel::new(1.0, 3.0));
        assert_eq!(m.total(), 90.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn dvs_rejects_unsorted_levels() {
        DvsConfig::new(vec![SpeedLevel::new(2.0, 1.0), SpeedLevel::new(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one speed level")]
    fn dvs_rejects_empty() {
        DvsConfig::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn level_rejects_zero_frequency() {
        SpeedLevel::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "cycle count")]
    fn meter_rejects_negative_cycles() {
        let mut m = EnergyMeter::new(2);
        m.record_cycles(-1.0, SpeedLevel::new(1.0, 1.0));
    }

    #[test]
    fn fastest_slowest_indices() {
        let dvs = DvsConfig::paper_default();
        assert_eq!(dvs.slowest(), 0);
        assert_eq!(dvs.fastest(), 1);
        let fixed = DvsConfig::fixed(SpeedLevel::new(1.0, 1.0));
        assert_eq!(fixed.slowest(), fixed.fastest());
    }
}
