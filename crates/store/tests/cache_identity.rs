//! The store's headline guarantee, goldened over the whole scheme/fault
//! landscape: for every one of the paper's 8 checkpointing schemes crossed
//! with 4 fault processes, a cache hit is **byte-identical** to a fresh
//! recomputation — same in-memory `Summary` to the bit, same serialized
//! `RunReport` text — through both the in-memory and the filesystem
//! backend, and `eacp store verify` re-proves every recorded cell.

use eacp_spec::{ExperimentSpec, FaultSpec, McSpec, PolicySpec, ToJson};
use eacp_store::{
    run_cached, verify_store, CacheMode, CacheOutcome, FsBackend, MemBackend, NoopStoreObserver,
    StoreBackend, StoreCounters,
};

fn fault_processes(lambda: f64) -> Vec<FaultSpec> {
    vec![
        FaultSpec::Poisson { lambda },
        FaultSpec::Weibull {
            shape: 0.7,
            scale: 1.0 / lambda,
        },
        FaultSpec::Burst {
            quiet_rate: lambda / 4.0,
            burst_rate: lambda * 8.0,
            mean_quiet_dwell: 4_000.0,
            mean_burst_dwell: 400.0,
        },
        FaultSpec::Phased {
            phases: vec![(3_000.0, lambda / 2.0), (1_500.0, lambda * 3.0)],
            repeat: true,
        },
    ]
}

fn landscape() -> Vec<ExperimentSpec> {
    let lambda = 1.4e-3;
    let mut specs = Vec::new();
    for tag in PolicySpec::TAGS {
        for faults in fault_processes(lambda) {
            let mut spec = ExperimentSpec::paper_nominal();
            spec.name = format!("{tag}-{}", specs.len());
            spec.policy = PolicySpec::from_tag(tag, lambda, 3, 0).expect("known tag");
            spec.faults = faults;
            spec.mc = McSpec {
                replications: 50,
                seed: 2006,
                threads: 1,
            };
            specs.push(spec);
        }
    }
    specs
}

fn assert_hits_identical(store: &dyn StoreBackend) {
    let specs = landscape();
    assert_eq!(specs.len(), 32, "8 schemes x 4 fault processes");
    let counters = StoreCounters::new();

    // Cold pass: everything computes and records.
    let mut cold = Vec::with_capacity(specs.len());
    for spec in &specs {
        let run = run_cached(spec, store, CacheMode::ReadWrite, &counters).expect("cold run");
        assert_eq!(run.cache, CacheOutcome::Miss, "{}", spec.name);
        cold.push(run);
    }
    assert_eq!(counters.misses(), 32);
    assert_eq!(counters.records(), 32);

    // Warm pass: every cell hits, bit- and byte-identical to the cold
    // computation and to an independent direct recomputation.
    for (spec, cold_run) in specs.iter().zip(&cold) {
        let hit = run_cached(spec, store, CacheMode::ReadWrite, &counters).expect("warm run");
        assert_eq!(hit.cache, CacheOutcome::Hit, "{}", spec.name);
        assert_eq!(
            hit.summary, cold_run.summary,
            "{}: summary bits differ",
            spec.name
        );
        let (direct, direct_report) = eacp_exec::run(spec).expect("direct run");
        assert_eq!(
            hit.summary, direct,
            "{}: hit differs from recomputation",
            spec.name
        );
        assert_eq!(
            hit.report.to_json().pretty(),
            direct_report.to_json().pretty(),
            "{}: report bytes differ",
            spec.name
        );
    }
    assert_eq!(counters.hits(), 32);
    assert_eq!(counters.quarantined(), 0);

    // And the store proves itself: every cell recomputes to its stored
    // bytes (sampled at full depth).
    let verified = verify_store(store, 0).expect("verification");
    assert_eq!(verified.entries, 32);
    assert_eq!(verified.checked, 32);
}

#[test]
fn cache_hits_are_byte_identical_across_the_scheme_fault_landscape_mem() {
    assert_hits_identical(&MemBackend::new());
}

#[test]
fn cache_hits_are_byte_identical_across_the_scheme_fault_landscape_fs() {
    let dir = std::env::temp_dir().join(format!("eacp-store-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FsBackend::open(&dir).expect("store opens");
    assert_hits_identical(&store);

    // Filesystem hits carry provenance: the report names its entry file.
    let spec = &landscape()[0];
    let hit = run_cached(spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).expect("hit");
    assert_eq!(hit.cache, CacheOutcome::Hit);
    let source = hit.report.source.expect("fs hit names its artifact");
    assert!(source.starts_with(&dir), "{}", source.display());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
