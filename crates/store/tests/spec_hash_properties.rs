//! Content-address soundness: semantically equal spec JSON always lands in
//! the same cell, and any result-bearing field change always lands in a
//! different one.
//!
//! "Semantically equal" covers exactly the freedoms JSON gives an author:
//! object key order, whitespace/indentation, float spelling (`1.4e-3` vs
//! `0.0014`), plus the store's own result-neutral fields (`name`, `mc`,
//! `executor.queue`). If any of these leaked into the hash, the cache
//! would silently fragment — equal experiments recomputed under different
//! addresses. If a result-bearing change ever collided, the cache would
//! serve a wrong answer. Both directions are load-bearing.

use eacp_spec::{ExperimentSpec, FaultSpec, PolicySpec, QueueSpec, ToJson};
use eacp_store::spec_hash;
use proptest::prelude::*;

/// A grid of distinct experiments to perturb.
fn spec_for(scheme: usize, lambda: f64, k: u32) -> ExperimentSpec {
    let tag = PolicySpec::TAGS[scheme % PolicySpec::TAGS.len()];
    let mut spec = ExperimentSpec::paper_nominal();
    spec.policy = PolicySpec::from_tag(tag, lambda, k, 0).expect("known tag");
    spec.faults = FaultSpec::Poisson { lambda };
    spec
}

/// Re-serializes a JSON document with shuffled object key order (rotation
/// by `salt`), recursively.
fn rotate_keys(json: &eacp_spec::Json, salt: usize) -> eacp_spec::Json {
    use eacp_spec::Json;
    match json {
        Json::Object(fields) => {
            let mut rotated: Vec<(String, Json)> = fields
                .iter()
                .map(|(k, v)| (k.clone(), rotate_keys(v, salt + 1)))
                .collect();
            if !rotated.is_empty() {
                let by = salt % rotated.len();
                rotated.rotate_left(by);
            }
            Json::Object(rotated)
        }
        Json::Array(items) => Json::Array(items.iter().map(|v| rotate_keys(v, salt)).collect()),
        other => other.clone(),
    }
}

/// Compact (no-whitespace) serialization of a document.
fn compact(json: &eacp_spec::Json) -> String {
    use eacp_spec::Json;
    match json {
        Json::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{:?}:{}", k, compact(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Json::Array(items) => {
            let inner: Vec<String> = items.iter().map(compact).collect();
            format!("[{}]", inner.join(","))
        }
        other => other.pretty().trim().to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Key order, whitespace, float spelling and result-neutral fields
    /// never change the address.
    #[test]
    fn semantically_equal_documents_share_a_hash(
        scheme in 0usize..8,
        lambda_scale in 1u32..50,
        k in 1u32..8,
        salt in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let lambda = lambda_scale as f64 * 1e-4;
        let spec = spec_for(scheme, lambda, k);
        let base = spec_hash(&spec);

        // Key order: rotate every object's fields and re-parse.
        let rotated = rotate_keys(&spec.to_json(), salt).pretty();
        let reparsed = ExperimentSpec::from_json_str(&rotated).expect("rotation keeps schema");
        prop_assert_eq!(spec_hash(&reparsed), base, "key order leaked into the hash");

        // Whitespace: compact serialization, same document.
        let compacted = compact(&spec.to_json());
        let reparsed = ExperimentSpec::from_json_str(&compacted).expect("compact keeps schema");
        prop_assert_eq!(spec_hash(&reparsed), base, "whitespace leaked into the hash");

        // Float spelling: an equivalent decimal expansion of lambda.
        let retext = spec
            .to_json_string()
            .replace(&format!("{lambda:?}"), &format!("{lambda:.24}"));
        let reparsed = ExperimentSpec::from_json_str(&retext).expect("respelling keeps schema");
        prop_assert_eq!(spec_hash(&reparsed), base, "float spelling leaked into the hash");

        // Result-neutral fields: name, mc, queue scheduling.
        let mut neutral = spec.clone();
        neutral.name = format!("renamed-{seed}");
        neutral.mc.seed = seed;
        neutral.mc.replications = 1 + seed % 9_999;
        neutral.mc.threads = (seed % 7) as usize;
        neutral.executor = neutral.executor.with_queue(QueueSpec {
            workers: (seed % 5) as usize,
            max_attempts: 1 + (seed % 3) as u32,
            ..Default::default()
        });
        prop_assert_eq!(spec_hash(&neutral), base, "result-neutral field leaked into the hash");
    }

    /// Any result-bearing field change produces a different address.
    #[test]
    fn field_changes_change_the_hash(
        scheme in 0usize..8,
        lambda_scale in 1u32..50,
        k in 1u32..8,
    ) {
        let lambda = lambda_scale as f64 * 1e-4;
        let spec = spec_for(scheme, lambda, k);
        let base = spec_hash(&spec);

        let mut faults = spec.clone();
        faults.faults = FaultSpec::Poisson { lambda: lambda * 1.0000001 };
        prop_assert_ne!(spec_hash(&faults), base, "fault-rate change collided");

        let mut policy = spec.clone();
        let other_tag = PolicySpec::TAGS[(scheme + 1) % PolicySpec::TAGS.len()];
        policy.policy = PolicySpec::from_tag(other_tag, lambda, k, 0).expect("known tag");
        prop_assert_ne!(spec_hash(&policy), base, "policy change collided");

        let mut scenario = spec.clone();
        scenario.scenario.processors += 1;
        prop_assert_ne!(spec_hash(&scenario), base, "scenario change collided");

        let mut executor = spec.clone();
        executor.executor.faults_during_overhead = !executor.executor.faults_during_overhead;
        prop_assert_ne!(spec_hash(&executor), base, "executor-semantics change collided");
    }

    /// Scheme × k landscape: equal canonical documents share an address,
    /// distinct ones never collide. (Some schemes ignore `k`, so two grid
    /// cells *may* legitimately be the same experiment — the invariant is
    /// hash-equal ⇔ document-equal.)
    #[test]
    fn the_scheme_grid_has_no_collisions(lambda_scale in 1u32..50) {
        let lambda = lambda_scale as f64 * 1e-4;
        let mut seen: std::collections::BTreeMap<String, String> =
            std::collections::BTreeMap::new();
        for scheme in 0..PolicySpec::TAGS.len() {
            for k in [1u32, 5] {
                let spec = spec_for(scheme, lambda, k);
                let doc = eacp_store::cell_spec_json(&spec).pretty();
                let hash = spec_hash(&spec).to_string();
                if let Some(prior) = seen.get(&hash) {
                    prop_assert_eq!(
                        prior, &doc,
                        "hash collision between distinct documents at scheme {} k {}",
                        scheme, k
                    );
                } else {
                    seen.insert(hash, doc);
                }
            }
        }
        // The landscape still spans plenty of distinct experiments.
        prop_assert!(seen.len() >= PolicySpec::TAGS.len());
    }
}
