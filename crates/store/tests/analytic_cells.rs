//! The analytic serve tier through the store: cells record the tier that
//! computed them, hits replay it, and `store verify` re-derives each cell
//! through its own tier — so a store can mix analytic and forced-MC cells
//! and the byte-identity guarantee holds for both.

use eacp_exec::LocalRunner;
use eacp_spec::{ExperimentSpec, FaultSpec, McSpec, ServeTier, ToJson};
use eacp_store::{
    run_cached_tiered, run_cached_with_tiered, verify_store, CacheMode, CacheOutcome, CellId,
    MemBackend, NoopStoreObserver, StoreBackend,
};

fn invariant_spec(name: &str) -> ExperimentSpec {
    let mut spec = ExperimentSpec::paper_nominal();
    spec.name = name.into();
    spec.faults = FaultSpec::Poisson { lambda: 0.0 };
    spec.mc = McSpec {
        replications: 300,
        seed: 7,
        threads: 1,
    };
    spec
}

#[test]
fn analytic_cell_records_serves_and_verifies_through_its_tier() {
    let spec = invariant_spec("analytic-cell");
    let store = MemBackend::new();

    let cold = run_cached_tiered(
        &spec,
        &store,
        CacheMode::ReadWrite,
        &NoopStoreObserver,
        true,
    )
    .unwrap();
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert_eq!(cold.report.served, ServeTier::Analytic);

    // The hit replays the recorded tier and the exact summary.
    let warm = run_cached_tiered(
        &spec,
        &store,
        CacheMode::ReadWrite,
        &NoopStoreObserver,
        true,
    )
    .unwrap();
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.report.served, ServeTier::Analytic);
    assert_eq!(warm.summary, cold.summary);

    // The persisted entry carries the marker …
    let id = CellId::for_spec(&spec);
    match store.get(&id).unwrap() {
        eacp_store::Lookup::Hit { entry, .. } => {
            assert_eq!(entry.served, ServeTier::Analytic);
            assert!(entry
                .to_json()
                .pretty()
                .contains("\"served\": \"analytic\""));
        }
        other => panic!("expected a hit, got {other:?}"),
    }

    // … and verification re-derives the cell through the analytic tier.
    let verified = verify_store(&store, 0).unwrap();
    assert_eq!(verified.checked, 1);
}

#[test]
fn forced_mc_cell_of_the_same_spec_is_a_distinct_but_equal_recording() {
    let spec = invariant_spec("forced-mc-cell");
    let store = MemBackend::new();
    let runner = LocalRunner::new(1);

    // Record with the tier disabled: the cell is a plain MC cell whose
    // serialization carries no marker (historical byte stability).
    let cold = run_cached_with_tiered(
        &spec,
        &runner,
        &store,
        CacheMode::ReadWrite,
        &NoopStoreObserver,
        false,
    )
    .unwrap();
    assert_eq!(cold.report.served, ServeTier::Mc);
    let id = CellId::for_spec(&spec);
    match store.get(&id).unwrap() {
        eacp_store::Lookup::Hit { entry, .. } => {
            assert_eq!(entry.served, ServeTier::Mc);
            assert!(!entry.to_json().pretty().contains("served"));
        }
        other => panic!("expected a hit, got {other:?}"),
    }

    // A later analytic-enabled invocation serves the MC recording as-is
    // (the hit short-circuits before the tier is consulted) …
    let warm = run_cached_with_tiered(
        &spec,
        &runner,
        &store,
        CacheMode::ReadWrite,
        &NoopStoreObserver,
        true,
    )
    .unwrap();
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.report.served, ServeTier::Mc);
    // … and the invariant cell is a point mass, so the MC summary equals
    // what the analytic tier would have produced.
    assert_eq!(warm.summary, cold.summary);

    // Verify re-runs the MC loop for this cell, not the analytic tier.
    assert_eq!(verify_store(&store, 0).unwrap().checked, 1);
}

#[test]
fn refresh_with_tier_toggled_overwrites_the_recorded_tier() {
    let spec = invariant_spec("tier-flip");
    let store = MemBackend::new();
    let runner = LocalRunner::new(1);
    let id = CellId::for_spec(&spec);

    run_cached_with_tiered(
        &spec,
        &runner,
        &store,
        CacheMode::ReadWrite,
        &NoopStoreObserver,
        true,
    )
    .unwrap();
    let refreshed = run_cached_with_tiered(
        &spec,
        &runner,
        &store,
        CacheMode::Refresh,
        &NoopStoreObserver,
        false,
    )
    .unwrap();
    assert_eq!(refreshed.cache, CacheOutcome::Refreshed);
    assert_eq!(refreshed.report.served, ServeTier::Mc);
    match store.get(&id).unwrap() {
        eacp_store::Lookup::Hit { entry, .. } => assert_eq!(entry.served, ServeTier::Mc),
        other => panic!("expected a hit, got {other:?}"),
    }
    assert_eq!(verify_store(&store, 0).unwrap().checked, 1);
}
