//! Store cells: what a result is keyed by and what an entry holds.
//!
//! A **cell** is one reproducible unit of computation: a canonical cell
//! spec (content-addressed by [`SpecHash`]) plus the Monte-Carlo seed and
//! replication count. Every field of the key is an exact input to the
//! deterministic simulator, so a cell's result never goes stale — the only
//! way to get a different answer is to ask a different cell.
//!
//! `replications == 0` is the **single-execution sentinel**: `eacp run`
//! executes one replication directly with the raw base seed (no
//! per-replication seed derivation), which is a different computation from
//! a 1-replication Monte-Carlo cell. The sentinel is unambiguous because
//! `McSpec::validate` rejects `replications == 0` for real Monte-Carlo
//! runs. Summary cells carry a [`CellPayload::Summary`]; single-execution
//! cells carry a [`CellPayload::Outcome`].
//!
//! Payload serialization is **lossless**, not the report schema: the
//! report layer's `StatsReport` stores `variance = m2 / count`, which
//! cannot reconstruct the accumulator bit-exactly. Entries instead persist
//! each [`OnlineStats`] via its raw `(count, mean, m2, min, max)` state,
//! which round-trips bit-for-bit through the spec layer's
//! shortest-round-trip float formatting — the property that makes a cache
//! hit byte-identical to recomputation.

use crate::hash::{
    cell_spec_json, executive_cell_spec_json, executive_spec_hash, sha256, spec_hash, SpecHash,
};
use eacp_exec::ExecutiveSummary;
use eacp_sim::{RunOutcome, Summary};
use eacp_spec::{
    ExecutiveMcSpec, ExecutiveSpec, ExperimentSpec, FromJson, Json, ServeTier, SpecError, ToJson,
};
use std::path::PathBuf;

/// The key of one stored result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellId {
    /// Content address of the canonical cell spec.
    pub spec_hash: SpecHash,
    /// Monte-Carlo base seed.
    pub seed: u64,
    /// Replication count; `0` denotes a single raw-seed execution.
    pub replications: u64,
}

impl CellId {
    /// The cell a Monte-Carlo run of `spec` lands in.
    pub fn for_spec(spec: &ExperimentSpec) -> Self {
        Self {
            spec_hash: spec_hash(spec),
            seed: spec.mc.seed,
            replications: spec.mc.replications,
        }
    }

    /// The cell a single raw-seed execution of `spec` lands in.
    pub fn for_single(spec: &ExperimentSpec) -> Self {
        Self {
            spec_hash: spec_hash(spec),
            seed: spec.mc.seed,
            replications: 0,
        }
    }

    /// The cell an executive Monte-Carlo run of `spec` lands in. The seed
    /// is the spec's top-level seed; the replication count is the horizon
    /// count from the spec's `mc` section (its default when absent).
    pub fn for_executive(spec: &ExecutiveSpec) -> Self {
        Self {
            spec_hash: executive_spec_hash(spec),
            seed: spec.seed,
            replications: spec.mc_or_default().replications,
        }
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:s{}:r{}",
            self.spec_hash, self.seed, self.replications
        )
    }
}

/// What a cell holds: the aggregate of a Monte-Carlo run, or the outcome
/// of one single execution.
// Summary outweighs RunOutcome, but payloads are built once per recorded
// cell (cold path); boxing would complicate every accessor for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellPayload {
    /// Monte-Carlo aggregate (`replications >= 1`).
    Summary(Summary),
    /// One raw-seed execution (`replications == 0`).
    Outcome(RunOutcome),
    /// Executive Monte-Carlo aggregate: N seeded hyperperiod horizons
    /// (`replications >= 1`, over an executive cell spec).
    Executive(ExecutiveSummary),
}

/// One stored result: key, canonical spec document, and payload.
#[derive(Debug, Clone)]
pub struct CellEntry {
    /// The cell this entry fills.
    pub cell: CellId,
    /// The `Policy::name()` of the scheme that ran.
    pub policy: String,
    /// The canonical cell-spec document ([`cell_spec_json`]) — embedded so
    /// an entry is self-describing and re-verifiable without the original
    /// spec file.
    pub spec: Json,
    /// The result.
    pub payload: CellPayload,
    /// Which execution tier produced the payload. `ServeTier::Analytic`
    /// marks summaries answered by the closed-form tier (replication-
    /// invariant cells); `eacp store verify` re-derives such cells through
    /// the same tier, so the byte-comparison stays meaningful. Serialized
    /// only when analytic — Monte-Carlo entries keep their historical
    /// bytes.
    pub served: ServeTier,
    /// Where this entry was loaded from (`None` for freshly computed
    /// entries). Never serialized — diagnostics provenance, so `eacp store
    /// verify` failures can name the offending artifact.
    pub source: Option<PathBuf>,
}

// Like `RunReport`: provenance is where the entry came from, not part of
// the result, so a loaded entry compares equal to its recomputation.
impl PartialEq for CellEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cell == other.cell
            && self.policy == other.policy
            && self.spec == other.spec
            && self.payload == other.payload
            && self.served == other.served
    }
}

impl CellEntry {
    /// Builds the entry recording a Monte-Carlo run of `spec`.
    pub fn summary(spec: &ExperimentSpec, summary: &Summary) -> Self {
        Self::summary_tiered(spec, summary, ServeTier::Mc)
    }

    /// [`CellEntry::summary`] carrying the tier that produced the
    /// aggregate — `ServeTier::Analytic` for closed-form-served cells.
    pub fn summary_tiered(spec: &ExperimentSpec, summary: &Summary, served: ServeTier) -> Self {
        Self {
            cell: CellId::for_spec(spec),
            policy: spec.policy.policy_name().to_owned(),
            spec: cell_spec_json(spec),
            payload: CellPayload::Summary(summary.clone()),
            served,
            source: None,
        }
    }

    /// Builds the entry recording a single raw-seed execution of `spec`.
    pub fn outcome(spec: &ExperimentSpec, outcome: &RunOutcome) -> Self {
        Self {
            cell: CellId::for_single(spec),
            policy: spec.policy.policy_name().to_owned(),
            spec: cell_spec_json(spec),
            payload: CellPayload::Outcome(outcome.clone()),
            served: ServeTier::Mc,
            source: None,
        }
    }

    /// Builds the entry recording an executive Monte-Carlo run of `spec`.
    /// The policy column holds the per-task names joined with `+`.
    pub fn executive(spec: &ExecutiveSpec, summary: &ExecutiveSummary) -> Self {
        Self {
            cell: CellId::for_executive(spec),
            policy: spec.policy.policy_names(spec.tasks.len()).join("+"),
            spec: executive_cell_spec_json(spec),
            payload: CellPayload::Executive(summary.clone()),
            served: ServeTier::Mc,
            source: None,
        }
    }

    /// The Monte-Carlo aggregate, for summary cells.
    pub fn as_summary(&self) -> Result<&Summary, SpecError> {
        match &self.payload {
            CellPayload::Summary(s) => Ok(s),
            _ => Err(SpecError::invalid(format!(
                "cell {} does not hold a single-task Monte-Carlo summary",
                self.cell
            ))),
        }
    }

    /// The single-execution outcome, for `replications == 0` cells.
    pub fn as_outcome(&self) -> Result<&RunOutcome, SpecError> {
        match &self.payload {
            CellPayload::Outcome(o) => Ok(o),
            _ => Err(SpecError::invalid(format!(
                "cell {} does not hold a single-execution outcome",
                self.cell
            ))),
        }
    }

    /// The executive Monte-Carlo aggregate, for executive cells.
    pub fn as_executive(&self) -> Result<&ExecutiveSummary, SpecError> {
        match &self.payload {
            CellPayload::Executive(s) => Ok(s),
            _ => Err(SpecError::invalid(format!(
                "cell {} does not hold an executive Monte-Carlo summary",
                self.cell
            ))),
        }
    }

    /// Reconstructs a runnable [`ExperimentSpec`] from the embedded
    /// canonical document plus this entry's key — the spec `eacp store
    /// verify` re-executes. The canonical document carries no `name` or
    /// `mc` section, so the name defaults and the seed/replications come
    /// from the cell id (`threads = 0`, which cannot change the result).
    pub fn experiment_spec(&self) -> Result<ExperimentSpec, SpecError> {
        let mut spec = ExperimentSpec::from_json(&self.spec)?;
        spec.mc.seed = self.cell.seed;
        spec.mc.replications = self.cell.replications.max(1);
        spec.mc.threads = 0;
        Ok(spec)
    }

    /// Reconstructs a runnable [`ExecutiveSpec`] from the embedded
    /// canonical document plus this entry's key — what `eacp store verify`
    /// re-executes for executive cells. The canonical document carries no
    /// `name`, `seed` or `mc`, so the name defaults, the seed comes from
    /// the cell id and the horizon count from the cell's replications
    /// (`threads = 0`, which cannot change the result).
    pub fn executive_spec(&self) -> Result<ExecutiveSpec, SpecError> {
        let mut spec = ExecutiveSpec::from_json(&self.spec)?;
        spec.seed = self.cell.seed;
        spec.mc = Some(ExecutiveMcSpec {
            replications: self.cell.replications.max(1),
            threads: 0,
            queue: None,
        });
        Ok(spec)
    }

    /// Internal-consistency check: the embedded spec re-hashes to the
    /// cell's address, and the payload kind, replication count and anomaly
    /// discipline match the key. Backends run this on every read so a
    /// corrupt or tampered entry surfaces as a quarantine, never as a
    /// silently wrong cache hit.
    pub fn validate(&self) -> Result<(), SpecError> {
        let rehashed = SpecHash(sha256(self.spec.pretty().as_bytes()));
        if rehashed != self.cell.spec_hash {
            return Err(SpecError::invalid(format!(
                "cell {}: embedded spec re-hashes to {rehashed}",
                self.cell
            )));
        }
        if self.served == ServeTier::Analytic && !matches!(self.payload, CellPayload::Summary(_)) {
            return Err(SpecError::invalid(format!(
                "cell {}: only Monte-Carlo summaries can be served analytically",
                self.cell
            )));
        }
        match &self.payload {
            CellPayload::Summary(s) => {
                if self.cell.replications == 0 {
                    return Err(SpecError::invalid(format!(
                        "cell {}: summary payload in a single-execution cell",
                        self.cell
                    )));
                }
                if s.replications != self.cell.replications {
                    return Err(SpecError::invalid(format!(
                        "cell {}: summary covers {} replications",
                        self.cell, s.replications
                    )));
                }
            }
            CellPayload::Outcome(o) => {
                if self.cell.replications != 0 {
                    return Err(SpecError::invalid(format!(
                        "cell {}: single-execution payload in a Monte-Carlo cell",
                        self.cell
                    )));
                }
                if o.anomaly.is_some() {
                    return Err(SpecError::invalid(format!(
                        "cell {}: anomalous outcomes are never recorded",
                        self.cell
                    )));
                }
            }
            CellPayload::Executive(s) => {
                if self.cell.replications == 0 {
                    return Err(SpecError::invalid(format!(
                        "cell {}: executive payload in a single-execution cell",
                        self.cell
                    )));
                }
                if s.horizons != self.cell.replications {
                    return Err(SpecError::invalid(format!(
                        "cell {}: executive summary covers {} horizons",
                        self.cell, s.horizons
                    )));
                }
            }
        }
        Ok(())
    }

    /// The canonical serialized bytes of this entry — exactly what a
    /// backend persists, and what `eacp store verify` compares against a
    /// recomputation.
    pub fn canonical_text(&self) -> String {
        self.to_json().pretty()
    }
}

impl ToJson for CellEntry {
    fn to_json(&self) -> Json {
        let (kind, payload) = match &self.payload {
            CellPayload::Summary(s) => ("summary", s.to_json()),
            CellPayload::Outcome(o) => ("outcome", outcome_to_json(o)),
            // ExecutiveSummary's own ToJson is already lossless (raw
            // accumulator state), so the entry embeds it verbatim.
            CellPayload::Executive(s) => ("executive", s.to_json()),
        };
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("spec_hash", self.cell.spec_hash.to_string().into()),
            ("seed", self.cell.seed.into()),
            ("replications", self.cell.replications.into()),
            ("policy", self.policy.as_str().into()),
        ];
        // Emitted only for analytic cells: Monte-Carlo entries keep their
        // historical canonical bytes.
        if self.served != ServeTier::Mc {
            fields.push(("served", self.served.as_str().into()));
        }
        fields.extend([
            ("spec", self.spec.clone()),
            ("kind", kind.into()),
            ("payload", payload),
        ]);
        Json::obj(fields)
    }
}

impl FromJson for CellEntry {
    fn from_json(json: &Json) -> Result<Self, SpecError> {
        let cell = CellId {
            spec_hash: SpecHash::from_hex(json.req("spec_hash")?.as_str()?)?,
            seed: json.req("seed")?.as_u64()?,
            replications: json.req("replications")?.as_u64()?,
        };
        let payload = match json.req("kind")?.as_str()? {
            "summary" => CellPayload::Summary(Summary::from_json(json.req("payload")?)?),
            "outcome" => CellPayload::Outcome(outcome_from_json(json.req("payload")?)?),
            "executive" => {
                CellPayload::Executive(ExecutiveSummary::from_json(json.req("payload")?)?)
            }
            other => {
                return Err(SpecError::invalid(format!(
                    "unknown cell payload kind {other:?} \
                     (expected summary, outcome or executive)"
                )))
            }
        };
        Ok(Self {
            cell,
            policy: json.req("policy")?.as_str()?.to_owned(),
            spec: json.req("spec")?.clone(),
            payload,
            served: match json.get("served") {
                None => ServeTier::Mc,
                Some(s) => ServeTier::parse(s.as_str()?)?,
            },
            source: None,
        })
    }
}

// Summary/OnlineStats cells persist through the spec layer's lossless
// `ToJson`/`FromJson` impls (raw accumulator state, same wire shape as
// the remote execution transport) — see `eacp_spec::report`.

/// Anomalous runs are never recorded (they indicate policy bugs, and the
/// store must not launder one into a cache hit), so the serialized outcome
/// has no anomaly field and deserialization always yields `anomaly: None`.
fn outcome_to_json(o: &RunOutcome) -> Json {
    Json::obj([
        ("completed", o.completed.into()),
        ("timely", o.timely.into()),
        ("finish_time", o.finish_time.into()),
        ("energy", o.energy.into()),
        ("faults", o.faults.into()),
        ("rollbacks", o.rollbacks.into()),
        ("store_checkpoints", o.store_checkpoints.into()),
        ("compare_checkpoints", o.compare_checkpoints.into()),
        (
            "compare_store_checkpoints",
            o.compare_store_checkpoints.into(),
        ),
        ("segments", o.segments.into()),
        ("speed_switches", o.speed_switches.into()),
        ("cycles_at_fastest", o.cycles_at_fastest.into()),
        ("total_cycles", o.total_cycles.into()),
        ("aborted", o.aborted.into()),
    ])
}

fn outcome_from_json(json: &Json) -> Result<RunOutcome, SpecError> {
    Ok(RunOutcome {
        completed: json.req("completed")?.as_bool()?,
        timely: json.req("timely")?.as_bool()?,
        finish_time: json.req("finish_time")?.as_f64()?,
        energy: json.req("energy")?.as_f64()?,
        faults: json.req("faults")?.as_u32()?,
        rollbacks: json.req("rollbacks")?.as_u32()?,
        store_checkpoints: json.req("store_checkpoints")?.as_u32()?,
        compare_checkpoints: json.req("compare_checkpoints")?.as_u32()?,
        compare_store_checkpoints: json.req("compare_store_checkpoints")?.as_u32()?,
        segments: json.req("segments")?.as_u32()?,
        speed_switches: json.req("speed_switches")?.as_u64()?,
        cycles_at_fastest: json.req("cycles_at_fastest")?.as_f64()?,
        total_cycles: json.req("total_cycles")?.as_f64()?,
        aborted: json.req("aborted")?.as_bool()?,
        anomaly: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_exec::run;
    use eacp_spec::McSpec;

    fn small_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 80,
            seed: 11,
            threads: 1,
        };
        spec
    }

    #[test]
    fn summary_entry_round_trips_bit_exactly() {
        let spec = small_spec();
        let (summary, _) = run(&spec).unwrap();
        let entry = CellEntry::summary(&spec, &summary);
        entry.validate().unwrap();
        let text = entry.canonical_text();
        let back = CellEntry::from_json(&Json::parse(&text).unwrap()).unwrap();
        back.validate().unwrap();
        assert_eq!(back, entry);
        assert_eq!(back.canonical_text(), text);
        // The payload round-trip is lossless to the bit, not just to the
        // serialized text: the reconstructed Summary equals the original.
        assert_eq!(back.as_summary().unwrap(), &summary);
    }

    #[test]
    fn outcome_entry_round_trips_and_uses_the_sentinel() {
        let spec = small_spec();
        let scenario = spec.scenario.build().unwrap();
        let mut policy = spec.policy.build().unwrap();
        let mut faults = spec.faults.build(spec.mc.seed).unwrap();
        let options = spec.executor.build().unwrap();
        let out = eacp_sim::Executor::new(&scenario)
            .with_options(options)
            .run(&mut policy, &mut faults);
        let entry = CellEntry::outcome(&spec, &out);
        assert_eq!(entry.cell.replications, 0);
        entry.validate().unwrap();
        let back = CellEntry::from_json(&Json::parse(&entry.canonical_text()).unwrap()).unwrap();
        assert_eq!(back.as_outcome().unwrap(), &out);
        assert!(back.as_summary().is_err());
    }

    #[test]
    fn validate_rejects_mismatched_entries() {
        let spec = small_spec();
        let (summary, _) = run(&spec).unwrap();
        let entry = CellEntry::summary(&spec, &summary);

        let mut wrong_hash = entry.clone();
        wrong_hash.cell.spec_hash = SpecHash([0u8; 32]);
        assert!(wrong_hash.validate().is_err());

        let mut wrong_reps = entry.clone();
        wrong_reps.cell.replications += 1;
        assert!(wrong_reps.validate().is_err());

        let mut sentinel_summary = entry.clone();
        sentinel_summary.cell.replications = 0;
        assert!(sentinel_summary.validate().is_err());
    }

    #[test]
    fn experiment_spec_reconstruction_lands_in_the_same_cell() {
        let spec = small_spec();
        let (summary, _) = run(&spec).unwrap();
        let entry = CellEntry::summary(&spec, &summary);
        let rebuilt = entry.experiment_spec().unwrap();
        assert_eq!(CellId::for_spec(&rebuilt), entry.cell);
        // Re-running the reconstructed spec reproduces the payload.
        let (again, _) = run(&rebuilt).unwrap();
        assert_eq!(&again, entry.as_summary().unwrap());
    }
}
