//! Content addressing for experiment cells.
//!
//! A cell's address is the SHA-256 digest of its *canonical cell spec*:
//! the experiment's [`ExperimentSpec`] JSON with everything that cannot
//! change the result removed. Three fields are stripped:
//!
//! * `name` — a human label, not an input to the simulation;
//! * `mc` — seed and replication count key the cell *alongside* the hash
//!   (see `CellId`), and the thread count is proven not to change a bit
//!   of the summary (the canonical-reduction contract);
//! * `executor.queue` — scheduling through the work queue is proven
//!   bit-identical to the local runner, so it is placement, not physics.
//!
//! Hashing the [`Json::pretty`] text of the stripped document inherits the
//! spec layer's canonical formatting: shortest-round-trip floats, lossless
//! integers, fixed key order from the `ToJson` impls. Two specs that parse
//! to the same document — whatever the key order, whitespace or float
//! spelling of the *input* text — therefore share an address, and any
//! semantic change produces a new one.
//!
//! The build environment is offline, so the crate carries its own SHA-256
//! (FIPS 180-4) rather than depending on a hashing crate.

use eacp_spec::{ExecutiveSpec, ExperimentSpec, Json, SpecError, ToJson};

/// The 32-byte content address of a canonical cell spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpecHash(pub [u8; 32]);

impl SpecHash {
    /// Parses the 64-character lowercase-hex form produced by `Display`.
    pub fn from_hex(text: &str) -> Result<Self, SpecError> {
        let bytes = text.as_bytes();
        if bytes.len() != 64 {
            return Err(SpecError::invalid(format!(
                "spec hash must be 64 hex characters (got {})",
                bytes.len()
            )));
        }
        let mut out = [0u8; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = hex_digit(bytes[2 * i])?;
            let lo = hex_digit(bytes[2 * i + 1])?;
            *slot = hi << 4 | lo;
        }
        Ok(Self(out))
    }
}

fn hex_digit(b: u8) -> Result<u8, SpecError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        _ => Err(SpecError::invalid(format!(
            "invalid hex digit {:?} in spec hash",
            b as char
        ))),
    }
}

impl std::fmt::Display for SpecHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// The canonical cell-spec document of an experiment: its JSON with the
/// result-neutral fields (`name`, `mc`, `executor.queue`) removed.
///
/// This is the exact text that gets hashed, and the exact text a store
/// entry embeds for verification — so the stored document always re-hashes
/// to its own address.
pub fn cell_spec_json(spec: &ExperimentSpec) -> Json {
    strip_result_neutral(spec.to_json())
}

/// Removes `name`, `mc` and `executor.queue` from an experiment document.
fn strip_result_neutral(json: Json) -> Json {
    let Json::Object(fields) = json else {
        return json;
    };
    Json::Object(
        fields
            .into_iter()
            .filter(|(k, _)| k != "name" && k != "mc")
            .map(|(k, v)| {
                if k != "executor" {
                    return (k, v);
                }
                match v {
                    Json::Object(exec_fields) => (
                        k,
                        Json::Object(
                            exec_fields
                                .into_iter()
                                .filter(|(ek, _)| ek != "queue")
                                .collect(),
                        ),
                    ),
                    other => (k, other),
                }
            })
            .collect(),
    )
}

/// The content address of an experiment's canonical cell spec.
pub fn spec_hash(spec: &ExperimentSpec) -> SpecHash {
    SpecHash(sha256(cell_spec_json(spec).pretty().as_bytes()))
}

/// The canonical cell-spec document of an executive experiment: its JSON
/// with the result-neutral fields removed.
///
/// For executive specs three top-level fields are stripped: `name` (human
/// label), `seed` (keys the cell alongside the hash, like `mc.seed` for
/// single-task cells) and `mc` (replications key the cell; threads and
/// queue scheduling are proven bit-identical by the canonical-reduction
/// contract).
pub fn executive_cell_spec_json(spec: &ExecutiveSpec) -> Json {
    let Json::Object(fields) = spec.to_json() else {
        // audit:allow(panic): ExecutiveSpec::to_json always builds an
        // object; any other shape is a ToJson impl bug.
        unreachable!("executive specs serialize to objects");
    };
    Json::Object(
        fields
            .into_iter()
            .filter(|(k, _)| k != "name" && k != "seed" && k != "mc")
            .collect(),
    )
}

/// The content address of an executive spec's canonical cell document.
pub fn executive_spec_hash(spec: &ExecutiveSpec) -> SpecHash {
    SpecHash(sha256(executive_cell_spec_json(spec).pretty().as_bytes()))
}

/// SHA-256 (FIPS 180-4) of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data ‖ 0x80 ‖ zeros ‖ 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, v) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&v.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::QueueSpec;

    fn hex(digest: [u8; 32]) -> String {
        SpecHash(digest).to_string()
    }

    #[test]
    fn sha256_matches_fips_test_vectors() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise multi-block padding (len 55/56/64 straddle the boundary).
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let data = vec![0x61u8; len];
            assert_eq!(sha256(&data).len(), 32, "len {len}");
        }
    }

    #[test]
    fn hash_ignores_name_mc_and_queue_scheduling() {
        let base = ExperimentSpec::paper_nominal();
        let mut renamed = base.clone();
        renamed.name = "something-else".into();
        let mut reseeded = base.clone();
        reseeded.mc.seed = 77;
        reseeded.mc.replications = 12;
        reseeded.mc.threads = 3;
        let mut queued = base.clone();
        queued.executor = queued.executor.with_queue(QueueSpec::default());
        for variant in [&renamed, &reseeded, &queued] {
            assert_eq!(spec_hash(&base), spec_hash(variant));
        }
    }

    #[test]
    fn hash_distinguishes_result_bearing_fields() {
        let base = ExperimentSpec::paper_nominal();
        let mut faults = base.clone();
        faults.faults = eacp_spec::FaultSpec::Poisson { lambda: 1.5e-3 };
        let mut policy = base.clone();
        policy.policy = eacp_spec::PolicySpec::from_tag("cscp", 1.4e-3, 5, 0).unwrap();
        let mut executor = base.clone();
        executor.executor.stop_at_deadline = !executor.executor.stop_at_deadline;
        for variant in [&faults, &policy, &executor] {
            assert_ne!(spec_hash(&base), spec_hash(variant));
        }
    }

    #[test]
    fn hex_round_trips() {
        let h = spec_hash(&ExperimentSpec::paper_nominal());
        let text = h.to_string();
        assert_eq!(text.len(), 64);
        assert_eq!(SpecHash::from_hex(&text).unwrap(), h);
        assert!(SpecHash::from_hex("zz").is_err());
        assert!(SpecHash::from_hex(&text[..63]).is_err());
        assert!(SpecHash::from_hex(&text.to_uppercase()).is_err());
    }

    #[test]
    fn canonical_cell_spec_re_hashes_to_its_own_address() {
        let spec = ExperimentSpec::paper_nominal();
        let doc = cell_spec_json(&spec);
        assert!(doc.get("name").is_none());
        assert!(doc.get("mc").is_none());
        assert_eq!(SpecHash(sha256(doc.pretty().as_bytes())), spec_hash(&spec));
    }
}
