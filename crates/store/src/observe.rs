//! Store telemetry: hit/miss/record/quarantine hooks.
//!
//! Mirrors the execution layer's `QueueObserver` pattern: a `&self` trait
//! the cache-or-compute path calls at each decision point, a no-op
//! implementation that compiles away, and an atomic-counter implementation
//! the CLI uses to print cache statistics after a run.

use crate::cell::CellId;
use std::sync::atomic::{AtomicU64, Ordering};

/// A streaming view of store traffic.
///
/// All methods take `&self` (sweeps may consult the store from worker
/// threads) and default to no-ops, so an implementation only overrides
/// what it measures.
pub trait StoreObserver {
    /// A cell was served from the store.
    fn on_hit(&self, id: &CellId) {
        let _ = id;
    }
    /// A cell was absent and will be computed.
    fn on_miss(&self, id: &CellId) {
        let _ = id;
    }
    /// A freshly computed cell was recorded.
    fn on_record(&self, id: &CellId) {
        let _ = id;
    }
    /// A stored entry failed integrity checks and was quarantined.
    fn on_quarantine(&self, id: &CellId, detail: &str) {
        let _ = (id, detail);
    }
}

/// The blind observer: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopStoreObserver;

impl StoreObserver for NoopStoreObserver {}

/// Atomic hit/miss/record/quarantine tallies.
#[derive(Debug, Default)]
pub struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    records: AtomicU64,
    quarantined: AtomicU64,
}

impl StoreCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cells served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells computed because the store had no intact entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cells recorded after computation.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Entries quarantined during lookups.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

impl StoreObserver for StoreCounters {
    fn on_hit(&self, _id: &CellId) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn on_miss(&self, _id: &CellId) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    fn on_record(&self, _id: &CellId) {
        self.records.fetch_add(1, Ordering::Relaxed);
    }
    fn on_quarantine(&self, _id: &CellId, _detail: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SpecHash;

    #[test]
    fn counters_tally_each_hook() {
        let id = CellId {
            spec_hash: SpecHash([0u8; 32]),
            seed: 1,
            replications: 2,
        };
        let counters = StoreCounters::new();
        counters.on_hit(&id);
        counters.on_hit(&id);
        counters.on_miss(&id);
        counters.on_record(&id);
        counters.on_quarantine(&id, "bad");
        assert_eq!(
            (
                counters.hits(),
                counters.misses(),
                counters.records(),
                counters.quarantined()
            ),
            (2, 1, 1, 1)
        );
        // The no-op observer accepts the same traffic silently.
        NoopStoreObserver.on_hit(&id);
        NoopStoreObserver.on_quarantine(&id, "bad");
    }
}
