//! Pluggable storage: the [`StoreBackend`] trait and the in-memory
//! reference backend.
//!
//! Backends store *canonical bytes* ([`CellEntry::canonical_text`]), not
//! in-memory objects: a hit hands back both the parsed entry and the exact
//! bytes that were persisted, which is what lets `eacp store verify`
//! promise "any byte mismatch fails" rather than "parses to something
//! equal".
//!
//! Corruption discipline (ROADMAP R4): a damaged or tampered entry is
//! **quarantined** — reported as [`Lookup::Quarantined`] and removed from
//! the live set — never a panic and never a silent wrong answer. Only
//! environmental failures (an unreadable directory, a full disk) are
//! errors.

use crate::cell::{CellEntry, CellId};
use eacp_spec::{FromJson, Json, SpecError};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The result of looking a cell up.
///
/// `Hit` is much larger than the other variants; lookups are cold-path
/// one-per-cell values, so boxing would cost more in ergonomics than it
/// saves in moves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The cell is present and intact.
    Hit {
        /// The parsed, validated entry (with its provenance `source` set
        /// when the backend knows one).
        entry: CellEntry,
        /// The exact persisted bytes of the entry.
        text: String,
    },
    /// The cell has never been recorded.
    Miss,
    /// An entry existed but failed integrity checks and was moved out of
    /// the live set; callers treat this as a miss and recompute.
    Quarantined {
        /// Why the entry was rejected.
        detail: String,
    },
}

/// A backend's self-report, for `eacp store status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHealth {
    /// Live entries.
    pub entries: u64,
    /// Total size of the live entries' canonical bytes.
    pub total_bytes: u64,
    /// Entries quarantined over the store's lifetime (filesystem backends
    /// count the quarantine directory; memory backends count since open).
    pub quarantined: u64,
    /// Human-readable location ("memory", or a directory path).
    pub location: String,
}

/// Retention limits for [`StoreBackend::evict`]. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionPolicy {
    /// Keep at most this many entries.
    pub max_entries: Option<u64>,
    /// Keep at most this many bytes of entries.
    pub max_bytes: Option<u64>,
}

/// What an eviction pass did, for `eacp store gc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionReport {
    /// Entries examined.
    pub examined: u64,
    /// Entries removed.
    pub evicted: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Entries remaining.
    pub remaining: u64,
}

/// Pluggable cell storage with health reporting and retention.
///
/// All methods take `&self`: backends are internally synchronized so one
/// store can serve concurrent sweep workers.
pub trait StoreBackend {
    /// Looks a cell up, validating integrity on the way out.
    fn get(&self, id: &CellId) -> Result<Lookup, SpecError>;

    /// Records an entry (idempotent: re-recording a cell overwrites it
    /// with identical bytes).
    fn put(&self, entry: &CellEntry) -> Result<(), SpecError>;

    /// Every live cell id, ascending.
    fn list(&self) -> Result<Vec<CellId>, SpecError>;

    /// The backend's health snapshot.
    fn health(&self) -> Result<StoreHealth, SpecError>;

    /// Evicts oldest-first until the retention policy is satisfied.
    fn evict(&self, policy: &RetentionPolicy) -> Result<EvictionReport, SpecError>;
}

/// In-memory reference backend: a seq-stamped [`BTreeMap`] behind a mutex.
///
/// "Oldest" for eviction is insertion order (the seq stamp), which is the
/// deterministic analogue of the filesystem backend's mtime order.
#[derive(Debug, Default)]
pub struct MemBackend {
    state: Mutex<MemState>,
}

#[derive(Debug, Default)]
struct MemState {
    entries: BTreeMap<CellId, (u64, String)>,
    seq: u64,
    quarantined: u64,
}

impl MemBackend {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        // A poisoned mutex only means another thread panicked mid-update;
        // the map itself is still structurally sound.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StoreBackend for MemBackend {
    fn get(&self, id: &CellId) -> Result<Lookup, SpecError> {
        let mut state = self.lock();
        let Some((_, text)) = state.entries.get(id) else {
            return Ok(Lookup::Miss);
        };
        match decode(id, text) {
            Ok(entry) => Ok(Lookup::Hit {
                text: text.clone(),
                entry,
            }),
            Err(detail) => {
                state.entries.remove(id);
                state.quarantined += 1;
                Ok(Lookup::Quarantined { detail })
            }
        }
    }

    fn put(&self, entry: &CellEntry) -> Result<(), SpecError> {
        entry.validate()?;
        let mut state = self.lock();
        state.seq += 1;
        let stamp = state.seq;
        state
            .entries
            .insert(entry.cell, (stamp, entry.canonical_text()));
        Ok(())
    }

    fn list(&self) -> Result<Vec<CellId>, SpecError> {
        Ok(self.lock().entries.keys().copied().collect())
    }

    fn health(&self) -> Result<StoreHealth, SpecError> {
        let state = self.lock();
        Ok(StoreHealth {
            entries: state.entries.len() as u64,
            total_bytes: state.entries.values().map(|(_, t)| t.len() as u64).sum(),
            quarantined: state.quarantined,
            location: "memory".to_owned(),
        })
    }

    fn evict(&self, policy: &RetentionPolicy) -> Result<EvictionReport, SpecError> {
        let mut state = self.lock();
        let examined = state.entries.len() as u64;
        // Oldest (smallest seq) first.
        let mut order: Vec<(u64, CellId, u64)> = state
            .entries
            .iter()
            .map(|(id, (seq, text))| (*seq, *id, text.len() as u64))
            .collect();
        order.sort_unstable_by_key(|(seq, _, _)| *seq);
        let mut remaining = examined;
        let mut remaining_bytes: u64 = order.iter().map(|(_, _, len)| len).sum();
        let mut evicted = 0u64;
        let mut reclaimed = 0u64;
        for (_, id, len) in order {
            let over_entries = policy.max_entries.is_some_and(|m| remaining > m);
            let over_bytes = policy.max_bytes.is_some_and(|m| remaining_bytes > m);
            if !over_entries && !over_bytes {
                break;
            }
            state.entries.remove(&id);
            remaining -= 1;
            remaining_bytes -= len;
            evicted += 1;
            reclaimed += len;
        }
        Ok(EvictionReport {
            examined,
            evicted,
            reclaimed_bytes: reclaimed,
            remaining,
        })
    }
}

/// Parses and integrity-checks one persisted entry; the error string is the
/// quarantine detail.
pub(crate) fn decode(id: &CellId, text: &str) -> Result<CellEntry, String> {
    let json = Json::parse(text).map_err(|e| format!("malformed entry: {e}"))?;
    let entry = CellEntry::from_json(&json).map_err(|e| format!("invalid entry: {e}"))?;
    if entry.cell != *id {
        return Err(format!(
            "entry is filed under cell {id} but claims cell {}",
            entry.cell
        ));
    }
    entry.validate().map_err(|e| e.to_string())?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_exec::run;
    use eacp_spec::{ExperimentSpec, McSpec};

    fn entry_with(seed: u64, reps: u64) -> CellEntry {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed,
            threads: 1,
        };
        let (summary, _) = run(&spec).unwrap();
        CellEntry::summary(&spec, &summary)
    }

    #[test]
    fn put_get_round_trips_canonical_bytes() {
        let store = MemBackend::new();
        let entry = entry_with(1, 40);
        assert!(matches!(store.get(&entry.cell).unwrap(), Lookup::Miss));
        store.put(&entry).unwrap();
        match store.get(&entry.cell).unwrap() {
            Lookup::Hit { entry: got, text } => {
                assert_eq!(got, entry);
                assert_eq!(text, entry.canonical_text());
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let store = MemBackend::new();
        let entry = entry_with(2, 40);
        store.put(&entry).unwrap();
        // Corrupt the stored bytes behind the backend's back.
        {
            let mut state = store.lock();
            let (_, text) = state.entries.get_mut(&entry.cell).unwrap();
            *text = text.replace("\"timely\"", "\"timeIy\"");
        }
        assert!(matches!(
            store.get(&entry.cell).unwrap(),
            Lookup::Quarantined { .. }
        ));
        // Quarantine removes the entry: the next lookup is a clean miss.
        assert!(matches!(store.get(&entry.cell).unwrap(), Lookup::Miss));
        assert_eq!(store.health().unwrap().quarantined, 1);
    }

    #[test]
    fn eviction_is_oldest_first_and_policy_bounded() {
        let store = MemBackend::new();
        let entries: Vec<CellEntry> = (0..4).map(|s| entry_with(s, 40)).collect();
        for e in &entries {
            store.put(e).unwrap();
        }
        let report = store
            .evict(&RetentionPolicy {
                max_entries: Some(2),
                max_bytes: None,
            })
            .unwrap();
        assert_eq!(report.examined, 4);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.remaining, 2);
        assert!(report.reclaimed_bytes > 0);
        // The two oldest are gone, the two newest survive.
        assert!(matches!(store.get(&entries[0].cell).unwrap(), Lookup::Miss));
        assert!(matches!(store.get(&entries[1].cell).unwrap(), Lookup::Miss));
        assert!(matches!(
            store.get(&entries[3].cell).unwrap(),
            Lookup::Hit { .. }
        ));

        // An unlimited policy evicts nothing.
        let report = store.evict(&RetentionPolicy::default()).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(report.remaining, 2);
    }

    #[test]
    fn health_counts_entries_and_bytes() {
        let store = MemBackend::new();
        assert_eq!(store.health().unwrap().entries, 0);
        let entry = entry_with(9, 40);
        store.put(&entry).unwrap();
        let health = store.health().unwrap();
        assert_eq!(health.entries, 1);
        assert_eq!(health.total_bytes, entry.canonical_text().len() as u64);
        assert_eq!(health.location, "memory");
        assert_eq!(store.list().unwrap(), vec![entry.cell]);
    }
}
