//! Filesystem backend: one JSON file per cell under a store directory.
//!
//! Layout:
//!
//! ```text
//! <root>/cells/<spec-hash>/s<seed>-r<replications>.json   live entries
//! <root>/quarantine/<spec-hash>-s<seed>-r<reps>.json      rejected entries
//! <root>/tmp/                                             write staging
//! ```
//!
//! Writes are **atomic**: the entry is staged under `tmp/` and renamed
//! into place, so a killed process can never leave a half-written live
//! entry — at worst it leaves stale temp files, which `evict` sweeps.
//! Reads run the full [`CellEntry::validate`] integrity suite; anything
//! that fails is *moved* to `quarantine/` (preserved for forensics, out of
//! the live set) and reported as [`Lookup::Quarantined`], never a panic.
//!
//! This is the one module in the crate that touches wall-clock filesystem
//! state (directory walks, mtimes for eviction order); nothing here feeds
//! back into simulation results.

use crate::backend::{decode, EvictionReport, Lookup, RetentionPolicy, StoreBackend, StoreHealth};
use crate::cell::{CellEntry, CellId};
use crate::hash::SpecHash;
use eacp_spec::SpecError;
use std::path::{Path, PathBuf};

/// The name of the environment variable the CLI resolves a default store
/// directory from (the flag `--store DIR` wins over it).
pub const STORE_ENV_VAR: &str = "EACP_STORE";

/// A store rooted at a directory.
#[derive(Debug, Clone)]
pub struct FsBackend {
    root: PathBuf,
}

fn io_err(path: &Path, e: std::io::Error) -> SpecError {
    SpecError::Io(format!("{}: {e}", path.display()))
}

impl FsBackend {
    /// Opens (creating if absent) a store directory.
    pub fn open(root: &Path) -> Result<Self, SpecError> {
        std::fs::create_dir_all(root.join("cells")).map_err(|e| io_err(root, e))?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, id: &CellId) -> PathBuf {
        self.root
            .join("cells")
            .join(id.spec_hash.to_string())
            .join(format!("s{}-r{}.json", id.seed, id.replications))
    }

    fn quarantine_path(&self, id: &CellId) -> PathBuf {
        self.root.join("quarantine").join(format!(
            "{}-s{}-r{}.json",
            id.spec_hash, id.seed, id.replications
        ))
    }

    /// Moves a rejected entry out of the live set, keeping its bytes for
    /// forensics. A failed move falls back to deletion — the one thing a
    /// quarantine must guarantee is that the entry cannot be served again.
    fn quarantine(&self, id: &CellId, live: &Path) -> Result<(), SpecError> {
        let dest = self.quarantine_path(id);
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
        if std::fs::rename(live, &dest).is_err() {
            std::fs::remove_file(live).map_err(|e| io_err(live, e))?;
        }
        Ok(())
    }

    /// Every live entry as `(id, path, bytes)`, oldest first.
    ///
    /// "Oldest" is filesystem mtime with the path as deterministic
    /// tiebreaker — wall-clock state is storage housekeeping, never an
    /// input to simulation results, and it stays confined to this walk.
    fn walk(&self) -> Result<Vec<(CellId, PathBuf, u64)>, SpecError> {
        let cells = self.root.join("cells");
        let mut out = Vec::new();
        let hash_dirs = std::fs::read_dir(&cells).map_err(|e| io_err(&cells, e))?;
        for hash_dir in hash_dirs {
            let hash_dir = hash_dir.map_err(|e| io_err(&cells, e))?.path();
            let Some(hash) = hash_dir
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| SpecHash::from_hex(n).ok())
            else {
                continue; // foreign file in cells/; not ours to touch
            };
            let Ok(files) = std::fs::read_dir(&hash_dir) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                let Some(id) = parse_cell_file_name(hash, &path) else {
                    continue; // temp leftovers and foreign files
                };
                let Ok(md) = file.metadata() else { continue };
                // audit:allow(determinism): eviction age-orders by mtime.
                out.push((md.modified().ok(), id, path, md.len()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
        Ok(out
            .into_iter()
            .map(|(_, id, path, len)| (id, path, len))
            .collect())
    }
}

/// Parses `s<seed>-r<reps>.json` back into a [`CellId`].
fn parse_cell_file_name(hash: SpecHash, path: &Path) -> Option<CellId> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix('s')?.strip_suffix(".json")?;
    let (seed, reps) = rest.split_once("-r")?;
    Some(CellId {
        spec_hash: hash,
        seed: seed.parse().ok()?,
        replications: reps.parse().ok()?,
    })
}

impl StoreBackend for FsBackend {
    fn get(&self, id: &CellId) -> Result<Lookup, SpecError> {
        let path = self.cell_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Lookup::Miss),
            Err(e) => return Err(io_err(&path, e)),
        };
        match decode(id, &text) {
            Ok(mut entry) => {
                entry.source = Some(path);
                Ok(Lookup::Hit { entry, text })
            }
            Err(detail) => {
                self.quarantine(id, &path)?;
                Ok(Lookup::Quarantined {
                    detail: format!("{}: {detail}", path.display()),
                })
            }
        }
    }

    fn put(&self, entry: &CellEntry) -> Result<(), SpecError> {
        entry.validate()?;
        let path = self.cell_path(&entry.cell);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
        // Stage-and-rename: readers never observe a partial entry.
        let tmp_dir = self.root.join("tmp");
        std::fs::create_dir_all(&tmp_dir).map_err(|e| io_err(&tmp_dir, e))?;
        let tmp = tmp_dir.join(format!(
            "{}-s{}-r{}.{}.json",
            entry.cell.spec_hash,
            entry.cell.seed,
            entry.cell.replications,
            std::process::id()
        ));
        std::fs::write(&tmp, entry.canonical_text()).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))
    }

    fn list(&self) -> Result<Vec<CellId>, SpecError> {
        let mut ids: Vec<CellId> = self.walk()?.into_iter().map(|(id, ..)| id).collect();
        ids.sort_unstable();
        Ok(ids)
    }

    fn health(&self) -> Result<StoreHealth, SpecError> {
        let live = self.walk()?;
        let quarantined = match std::fs::read_dir(self.root.join("quarantine")) {
            Ok(entries) => entries.flatten().count() as u64,
            Err(_) => 0, // no quarantine directory yet: nothing rejected
        };
        Ok(StoreHealth {
            entries: live.len() as u64,
            total_bytes: live.iter().map(|(_, _, len)| len).sum(),
            quarantined,
            location: self.root.display().to_string(),
        })
    }

    fn evict(&self, policy: &RetentionPolicy) -> Result<EvictionReport, SpecError> {
        // Sweep staging leftovers from killed writers first; they are
        // invisible to lookups but should not pin disk space.
        if let Ok(tmp) = std::fs::read_dir(self.root.join("tmp")) {
            for stale in tmp.flatten() {
                let _ = std::fs::remove_file(stale.path());
            }
        }
        let live = self.walk()?;
        let examined = live.len() as u64;
        let mut remaining = examined;
        let mut remaining_bytes: u64 = live.iter().map(|(_, _, len)| len).sum();
        let mut evicted = 0u64;
        let mut reclaimed = 0u64;
        for (_, path, len) in live {
            let over_entries = policy.max_entries.is_some_and(|m| remaining > m);
            let over_bytes = policy.max_bytes.is_some_and(|m| remaining_bytes > m);
            if !over_entries && !over_bytes {
                break;
            }
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            remaining -= 1;
            remaining_bytes -= len;
            evicted += 1;
            reclaimed += len;
        }
        Ok(EvictionReport {
            examined,
            evicted,
            reclaimed_bytes: reclaimed,
            remaining,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_exec::run;
    use eacp_spec::{ExperimentSpec, McSpec};

    fn entry_with(seed: u64, reps: u64) -> CellEntry {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: reps,
            seed,
            threads: 1,
        };
        let (summary, _) = run(&spec).unwrap();
        CellEntry::summary(&spec, &summary)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eacp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_and_sets_provenance() {
        let dir = temp_store("roundtrip");
        let store = FsBackend::open(&dir).unwrap();
        let entry = entry_with(1, 40);
        assert!(matches!(store.get(&entry.cell).unwrap(), Lookup::Miss));
        store.put(&entry).unwrap();
        match store.get(&entry.cell).unwrap() {
            Lookup::Hit { entry: got, text } => {
                assert_eq!(got, entry);
                assert_eq!(text, entry.canonical_text());
                let source = got.source.expect("fs hits carry provenance");
                assert!(source.starts_with(&dir), "{}", source.display());
                assert_eq!(text, std::fs::read_to_string(&source).unwrap());
            }
            other => panic!("expected hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_quarantined_with_bytes_preserved() {
        let dir = temp_store("quarantine");
        let store = FsBackend::open(&dir).unwrap();
        let entry = entry_with(2, 40);
        store.put(&entry).unwrap();

        // Tamper with the embedded spec document — covered by the content
        // address, so the entry no longer re-hashes to its own cell.
        let path = dir
            .join("cells")
            .join(entry.cell.spec_hash.to_string())
            .join("s2-r40.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("\"processors\": 2", "\"processors\": 3"),
        )
        .unwrap();

        match store.get(&entry.cell).unwrap() {
            Lookup::Quarantined { detail } => {
                assert!(detail.contains("s2-r40.json"), "{detail}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Out of the live set, bytes preserved for forensics.
        assert!(matches!(store.get(&entry.cell).unwrap(), Lookup::Miss));
        assert_eq!(store.health().unwrap().quarantined, 1);
        assert!(dir.join("quarantine").read_dir().unwrap().count() == 1);

        // Truncated JSON quarantines too.
        store.put(&entry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            store.get(&entry.cell).unwrap(),
            Lookup::Quarantined { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_filed_under_the_wrong_cell_is_quarantined() {
        let dir = temp_store("misfiled");
        let store = FsBackend::open(&dir).unwrap();
        let entry = entry_with(3, 40);
        store.put(&entry).unwrap();
        // Copy the entry to a different seed's slot.
        let good = store.cell_path(&entry.cell);
        let mut misfiled_id = entry.cell;
        misfiled_id.seed = 999;
        let bad = store.cell_path(&misfiled_id);
        std::fs::copy(&good, &bad).unwrap();
        match store.get(&misfiled_id).unwrap() {
            Lookup::Quarantined { detail } => assert!(detail.contains("claims cell"), "{detail}"),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The correctly-filed entry is untouched.
        assert!(matches!(
            store.get(&entry.cell).unwrap(),
            Lookup::Hit { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_health_and_eviction_cover_the_live_set() {
        let dir = temp_store("evict");
        let store = FsBackend::open(&dir).unwrap();
        let entries: Vec<CellEntry> = (0..3).map(|s| entry_with(s, 40)).collect();
        for e in &entries {
            store.put(e).unwrap();
        }
        let mut expected: Vec<CellId> = entries.iter().map(|e| e.cell).collect();
        expected.sort_unstable();
        assert_eq!(store.list().unwrap(), expected);
        let health = store.health().unwrap();
        assert_eq!(health.entries, 3);
        assert!(health.total_bytes > 0);
        assert_eq!(health.location, dir.display().to_string());

        // A stale temp file from a killed writer is swept, not served.
        std::fs::create_dir_all(dir.join("tmp")).unwrap();
        std::fs::write(dir.join("tmp").join("stale.json"), "{").unwrap();

        let report = store
            .evict(&RetentionPolicy {
                max_entries: Some(1),
                max_bytes: None,
            })
            .unwrap();
        assert_eq!(report.examined, 3);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.remaining, 1);
        assert_eq!(store.health().unwrap().entries, 1);
        assert_eq!(dir.join("tmp").read_dir().unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
