//! Store-backed sweeps: serve finished grid cells, schedule only the rest.
//!
//! A sweep expansion derives each grid point's spec (and per-point seed)
//! deterministically from the grid index, so every point *is* a cell. A
//! store-backed sweep is therefore resumable for free: kill it anywhere,
//! rerun with the same store, and the finished prefix is served as cache
//! hits while only the uncovered cells go through the runner. The
//! resulting [`GridReport`] is byte-identical to an uninterrupted run —
//! hits reconstruct the exact summary from the lossless entry payload.

use crate::backend::{Lookup, StoreBackend};
use crate::cell::CellId;
use crate::observe::StoreObserver;
use crate::{run_cached_with_tiered, run_executive_cached_with, CacheMode};
use eacp_exec::{
    ExecutiveGridReport, ExecutivePointReport, GridReport, PointReport, Runner, ShardId,
};
use eacp_spec::{ExecutiveSweepSpec, SpecError, SweepSpec};

/// How much of a sweep's grid the store already covers — the store-side
/// analogue of the execution layer's `SweepCoverage` over report files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreCoverage {
    /// The sweep's base experiment name.
    pub sweep_name: String,
    /// Total grid points in the full sweep.
    pub total_points: usize,
    /// Grid indices with no intact store entry, ascending.
    pub missing: Vec<usize>,
}

impl StoreCoverage {
    /// Points already covered by intact entries.
    pub fn covered(&self) -> usize {
        self.total_points - self.missing.len()
    }

    /// Whether a store-backed sweep would be served entirely from cache.
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Inspects how much of `sweep`'s grid the store already holds.
///
/// Corrupt entries encountered along the way are quarantined by the
/// backend and counted as missing — exactly what a subsequent
/// [`run_sweep_cached`] would recompute.
pub fn store_coverage(
    store: &dyn StoreBackend,
    sweep: &SweepSpec,
) -> Result<StoreCoverage, SpecError> {
    let specs = sweep.expand()?;
    let mut missing = Vec::new();
    for (index, spec) in specs.iter().enumerate() {
        let id = CellId::for_spec(spec);
        if !matches!(store.get(&id)?, Lookup::Hit { .. }) {
            missing.push(index);
        }
    }
    Ok(StoreCoverage {
        sweep_name: sweep.base.name.clone(),
        total_points: specs.len(),
        missing,
    })
}

/// Runs a sweep shard against a store: covered cells are served, uncovered
/// cells are scheduled onto `runner` and recorded.
///
/// Drop-in replacement for `eacp_exec::run_sweep_with` — same shard
/// semantics, same report document, byte-identical output (a point's
/// report never depends on whether it was computed or served).
pub fn run_sweep_cached(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<GridReport, SpecError> {
    run_sweep_cached_tiered(sweep, shard, runner, store, mode, observer, true)
}

/// [`run_sweep_cached`] with the closed-form serve tier explicitly enabled
/// or disabled (`analytic = false` is the CLI's `--no-analytic`).
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_cached_tiered(
    sweep: &SweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
    analytic: bool,
) -> Result<GridReport, SpecError> {
    let specs = sweep.expand()?;
    let total = specs.len();
    let range = match shard {
        Some(s) => s.range(total),
        None => 0..total,
    };
    let mut points = Vec::with_capacity(range.len());
    for index in range {
        let spec = &specs[index];
        let cached = run_cached_with_tiered(spec, runner, store, mode, observer, analytic)
            .map_err(|e| SpecError::invalid(format!("grid point {index} ({}): {e}", spec.name)))?;
        points.push(PointReport {
            index,
            report: cached.report,
        });
    }
    Ok(GridReport {
        sweep: sweep.clone(),
        total_points: total,
        shard,
        points,
        source: None,
    })
}

/// Inspects how much of an executive sweep's grid the store already holds
/// — the same [`StoreCoverage`] the single-task path produces, so status
/// commands render both kinds through one shared coverage formatter.
pub fn executive_store_coverage(
    store: &dyn StoreBackend,
    sweep: &ExecutiveSweepSpec,
) -> Result<StoreCoverage, SpecError> {
    let specs = sweep.expand()?;
    let mut missing = Vec::new();
    for (index, spec) in specs.iter().enumerate() {
        let id = CellId::for_executive(spec);
        if !matches!(store.get(&id)?, Lookup::Hit { .. }) {
            missing.push(index);
        }
    }
    Ok(StoreCoverage {
        sweep_name: sweep.base.name.clone(),
        total_points: specs.len(),
        missing,
    })
}

/// Runs an executive sweep shard against a store: covered cells are
/// served, uncovered cells are scheduled onto `runner` and recorded.
///
/// Drop-in replacement for `eacp_exec::run_executive_sweep` — same shard
/// semantics, same report document, byte-identical output (a point's
/// report never depends on whether it was computed or served).
pub fn run_executive_sweep_cached(
    sweep: &ExecutiveSweepSpec,
    shard: Option<ShardId>,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<ExecutiveGridReport, SpecError> {
    let specs = sweep.expand()?;
    let total = specs.len();
    let range = match shard {
        Some(s) => s.range(total),
        None => 0..total,
    };
    let mut points = Vec::with_capacity(range.len());
    for index in range {
        let spec = &specs[index];
        let cached = run_executive_cached_with(spec, runner, store, mode, observer)
            .map_err(|e| SpecError::invalid(format!("grid point {index} ({}): {e}", spec.name)))?;
        points.push(ExecutivePointReport {
            index,
            report: cached.report,
        });
    }
    Ok(ExecutiveGridReport {
        sweep: sweep.clone(),
        total_points: total,
        shard,
        points,
        source: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_cached_with, CacheOutcome, MemBackend, NoopStoreObserver, StoreCounters};
    use eacp_exec::{run_sweep_with, LocalRunner};
    use eacp_spec::{ExperimentSpec, McSpec, SweepAxis, ToJson};

    fn small_sweep() -> SweepSpec {
        let mut base = ExperimentSpec::paper_nominal();
        base.name = "grid".into();
        base.mc = McSpec {
            replications: 40,
            seed: 5,
            threads: 1,
        };
        SweepSpec {
            base,
            axes: vec![
                SweepAxis::Lambda(vec![1.0e-4, 1.4e-3]),
                SweepAxis::K(vec![1, 5]),
            ],
        }
    }

    #[test]
    fn cached_sweep_matches_plain_sweep_byte_for_byte() {
        let sweep = small_sweep();
        let runner = LocalRunner::new(1);
        let store = MemBackend::new();
        let counters = StoreCounters::new();

        let plain = run_sweep_with(&sweep, None, &runner).unwrap();
        let cold = run_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &counters,
        )
        .unwrap();
        assert_eq!(cold, plain);
        assert_eq!(cold.to_json().pretty(), plain.to_json().pretty());
        assert_eq!((counters.hits(), counters.misses()), (0, 4));

        // Warm rerun: all four points served, still byte-identical.
        let warm = run_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &counters,
        )
        .unwrap();
        assert_eq!(warm.to_json().pretty(), plain.to_json().pretty());
        assert_eq!((counters.hits(), counters.misses()), (4, 4));
    }

    #[test]
    fn interrupted_sweep_resumes_from_the_store() {
        let sweep = small_sweep();
        let runner = LocalRunner::new(1);
        let store = MemBackend::new();

        // "Killed at the shard boundary": only shard 0 of 2 completed.
        let shard0 = ShardId::new(0, 2).unwrap();
        run_sweep_cached(
            &sweep,
            Some(shard0),
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();

        let coverage = store_coverage(&store, &sweep).unwrap();
        assert_eq!(coverage.sweep_name, "grid");
        assert_eq!(coverage.total_points, 4);
        assert_eq!(coverage.covered(), 2);
        assert_eq!(coverage.missing, vec![2, 3]);
        assert!(!coverage.complete());

        // Resume over the full grid: the finished half hits, the rest
        // computes, and the result equals an uninterrupted run.
        let counters = StoreCounters::new();
        let resumed = run_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &counters,
        )
        .unwrap();
        assert_eq!((counters.hits(), counters.misses()), (2, 2));
        let plain = run_sweep_with(&sweep, None, &runner).unwrap();
        assert_eq!(resumed.to_json().pretty(), plain.to_json().pretty());
        assert!(store_coverage(&store, &sweep).unwrap().complete());
    }

    #[test]
    fn per_point_seed_axes_key_distinct_cells() {
        // A seed axis gives grid points identical canonical specs that
        // differ only in mc.seed — the cell key must keep them apart.
        let mut sweep = small_sweep();
        sweep.axes = vec![SweepAxis::Seed(vec![1, 2, 3])];
        let store = MemBackend::new();
        let report = run_sweep_cached(
            &sweep,
            None,
            &LocalRunner::new(1),
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        assert_eq!(report.points.len(), 3);
        assert_eq!(store.health().unwrap().entries, 3);
    }

    #[test]
    fn hits_carry_no_stale_spec() {
        // A hit's report embeds the *caller's* expansion spec (name, mc
        // and all), not a reconstruction from the canonical document —
        // otherwise merged grids would lose their names.
        let sweep = small_sweep();
        let store = MemBackend::new();
        let runner = LocalRunner::new(1);
        run_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        let warm = run_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        let expected = sweep.expand().unwrap();
        for point in &warm.points {
            assert_eq!(point.report.spec, expected[point.index]);
        }
    }

    fn executive_sweep() -> ExecutiveSweepSpec {
        use eacp_spec::{
            ExecutiveMcSpec, ExecutiveSpec, ExecutiveSweepAxis, FaultSpec, PolicyAssignment,
            PolicySpec, TaskSetSpec,
        };
        let mut base = ExecutiveSpec::new(
            "exec-grid",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        base.faults = FaultSpec::Poisson { lambda: 5e-4 };
        base.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 5e-4, 2, 0).unwrap());
        base.hyperperiods = 2;
        base.seed = 13;
        base.mc = Some(ExecutiveMcSpec {
            replications: 12,
            threads: 1,
            queue: None,
        });
        ExecutiveSweepSpec {
            base,
            axes: vec![ExecutiveSweepAxis::Lambda(vec![2e-4, 1e-3])],
        }
    }

    #[test]
    fn cached_executive_sweep_resumes_byte_identically() {
        let sweep = executive_sweep();
        let runner = LocalRunner::new(1);
        let store = MemBackend::new();
        let counters = StoreCounters::new();

        let plain = eacp_exec::run_executive_sweep(&sweep, None, &runner).unwrap();

        // "Killed" after shard 0 of 2; resume over the full grid.
        let shard0 = ShardId::new(0, 2).unwrap();
        run_executive_sweep_cached(
            &sweep,
            Some(shard0),
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        let coverage = executive_store_coverage(&store, &sweep).unwrap();
        assert_eq!(coverage.sweep_name, "exec-grid");
        assert_eq!(coverage.covered(), 1);
        assert_eq!(coverage.missing, vec![1]);

        let resumed = run_executive_sweep_cached(
            &sweep,
            None,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &counters,
        )
        .unwrap();
        assert_eq!((counters.hits(), counters.misses()), (1, 1));
        assert_eq!(resumed, plain);
        assert_eq!(resumed.to_json().pretty(), plain.to_json().pretty());
        assert!(executive_store_coverage(&store, &sweep).unwrap().complete());
    }

    #[test]
    fn single_point_cache_outcome_is_visible() {
        let sweep = small_sweep();
        let store = MemBackend::new();
        let spec = &sweep.expand().unwrap()[0];
        let runner = LocalRunner::new(1);
        let first = run_cached_with(
            spec,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        assert_eq!(first.cache, CacheOutcome::Miss);
        let second = run_cached_with(
            spec,
            &runner,
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        assert_eq!(second.cache, CacheOutcome::Hit);
        assert!(second.report.source.is_none(), "memory backend has no path");
        assert_eq!(second.summary, first.summary);
    }
}
