//! Content-addressed persistent result store for EACP experiments.
//!
//! The simulator is deterministic: a result is a pure function of the
//! canonical experiment spec, the Monte-Carlo seed and the replication
//! count. That triple is a [`CellId`] — the spec part content-addressed by
//! a SHA-256 [`SpecHash`] over the canonical JSON text — and this crate
//! caches results by cell so repeated runs, resumed sweeps and CI jobs
//! serve finished cells from storage instead of recomputing them.
//!
//! The determinism contract is what makes the cache *sound*: a hit is
//! byte-identical to a recomputation (entries persist the lossless
//! accumulator state, not the rounded report schema), and `eacp store
//! verify` can prove it at any time by re-running a cell and comparing
//! bytes. Storage is pluggable behind [`StoreBackend`]: [`FsBackend`]
//! persists one JSON file per cell with atomic write-rename and
//! quarantine-on-corruption; [`MemBackend`] is the in-memory reference.
//!
//! Entry points:
//!
//! * [`run_cached`] — cache-or-compute for one Monte-Carlo experiment
//!   (`eacp mc`);
//! * [`run_cached_single`] — the same for one raw-seed execution
//!   (`eacp run`), keyed with the `replications == 0` sentinel;
//! * [`run_sweep_cached`] — a resumable sweep: only uncovered grid cells
//!   are scheduled onto the runner;
//! * [`verify_store`] / [`verify_cell`] — recompute stored cells and fail
//!   on any byte mismatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cell;
pub mod fs;
pub mod hash;
pub mod observe;
pub mod sweep;

pub use backend::{EvictionReport, Lookup, MemBackend, RetentionPolicy, StoreBackend, StoreHealth};
pub use cell::{CellEntry, CellId, CellPayload};
pub use fs::{FsBackend, STORE_ENV_VAR};
pub use hash::{
    cell_spec_json, executive_cell_spec_json, executive_spec_hash, sha256, spec_hash, SpecHash,
};
pub use observe::{NoopStoreObserver, StoreCounters, StoreObserver};
pub use sweep::{
    executive_store_coverage, run_executive_sweep_cached, run_sweep_cached,
    run_sweep_cached_tiered, store_coverage, StoreCoverage,
};

use eacp_exec::{
    ExecutiveJob, ExecutiveMcReport, ExecutiveSummary, Job, LocalRunner, QueueRunner, Runner,
};
use eacp_sim::{RunOutcome, Summary};
use eacp_spec::{ExecutiveSpec, ExperimentSpec, RunReport, ServeTier, SpecError, SummaryReport};

/// How the cache participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Serve hits, record misses — the default.
    ReadWrite,
    /// Ignore any existing entry, recompute, and overwrite (`--refresh`).
    Refresh,
}

/// Where a result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the store without computing.
    Hit,
    /// Computed (no intact entry existed) and recorded.
    Miss,
    /// Recomputed and overwritten under [`CacheMode::Refresh`].
    Refreshed,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Refreshed => "refreshed",
        })
    }
}

/// The result of a cache-or-compute Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The cell the run landed in.
    pub id: CellId,
    /// The exact in-memory aggregate (bit-identical on hit and miss).
    pub summary: Summary,
    /// The serializable report; on a hit its `source` names the store
    /// entry the result was served from.
    pub report: RunReport,
    /// Hit, miss, or refresh.
    pub cache: CacheOutcome,
}

/// Cache-or-compute for one experiment spec (the `eacp mc` path).
///
/// The compute side matches `eacp_exec::run` exactly: the spec's executor
/// section picks the queue or local scheduler. Either way the summary is
/// bit-identical (the canonical-reduction contract), which is why the
/// scheduling choice is not part of the cell key.
pub fn run_cached(
    spec: &ExperimentSpec,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<CachedRun, SpecError> {
    run_cached_tiered(spec, store, mode, observer, true)
}

/// [`run_cached`] with the closed-form serve tier explicitly enabled or
/// disabled (`analytic = false` is the CLI's `--no-analytic`).
pub fn run_cached_tiered(
    spec: &ExperimentSpec,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
    analytic: bool,
) -> Result<CachedRun, SpecError> {
    match &spec.executor.queue {
        Some(q) => {
            q.validate()?;
            let runner = QueueRunner::new(q.workers).with_max_attempts(q.max_attempts);
            if q.endpoints.is_empty() {
                run_cached_with_tiered(spec, &runner, store, mode, observer, analytic)
            } else {
                // Remote fleet on a cache miss: same worker wiring as
                // `eacp_exec::run_tiered`, same bit-identical summary, so
                // the cell bytes are location-independent too.
                let worker = eacp_exec::RemoteWorker::from_queue_spec(q);
                let lease_timeout = worker.lease_timeout();
                let runner = runner.with_worker(worker).with_lease_timeout(lease_timeout);
                run_cached_with_tiered(spec, &runner, store, mode, observer, analytic)
            }
        }
        None => run_cached_with_tiered(
            spec,
            &LocalRunner::new(spec.mc.threads),
            store,
            mode,
            observer,
            analytic,
        ),
    }
}

/// [`run_cached`] on an explicit [`Runner`] — the seam the resumable sweep
/// shares with the single-experiment path.
pub fn run_cached_with(
    spec: &ExperimentSpec,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<CachedRun, SpecError> {
    run_cached_with_tiered(spec, runner, store, mode, observer, true)
}

/// [`run_cached_with`] with the closed-form serve tier explicitly enabled
/// or disabled.
///
/// Cells record the tier that computed them, and a hit serves whatever
/// tier the recording run used (the marker travels in the report), so one
/// store can hold a mix of analytic and forced-Monte-Carlo cells and
/// `store verify` re-derives each through its own tier.
pub fn run_cached_with_tiered(
    spec: &ExperimentSpec,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
    analytic: bool,
) -> Result<CachedRun, SpecError> {
    let id = CellId::for_spec(spec);
    if mode == CacheMode::ReadWrite {
        match store.get(&id)? {
            Lookup::Hit { entry, .. } => {
                observer.on_hit(&id);
                let summary = entry.as_summary()?.clone();
                let report = RunReport {
                    spec: spec.clone(),
                    policy_name: entry.policy.clone(),
                    summary: SummaryReport::from_summary(&summary),
                    served: entry.served,
                    source: entry.source,
                };
                return Ok(CachedRun {
                    id,
                    summary,
                    report,
                    cache: CacheOutcome::Hit,
                });
            }
            Lookup::Quarantined { detail } => observer.on_quarantine(&id, &detail),
            Lookup::Miss => {}
        }
        observer.on_miss(&id);
    }
    let job = Job::from_spec(spec)?;
    let (summary, served) = match analytic
        .then(|| eacp_exec::serve_closed_form(&job))
        .flatten()
    {
        Some(summary) => (summary, ServeTier::Analytic),
        None => (runner.run(&job)?, ServeTier::Mc),
    };
    store.put(&CellEntry::summary_tiered(spec, &summary, served))?;
    observer.on_record(&id);
    let report = RunReport {
        spec: spec.clone(),
        policy_name: job.policy_name().to_owned(),
        summary: SummaryReport::from_summary(&summary),
        served,
        source: None,
    };
    Ok(CachedRun {
        id,
        summary,
        report,
        cache: match mode {
            CacheMode::ReadWrite => CacheOutcome::Miss,
            CacheMode::Refresh => CacheOutcome::Refreshed,
        },
    })
}

/// The result of a cache-or-compute executive Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct CachedExecutive {
    /// The cell the run landed in.
    pub id: CellId,
    /// The exact in-memory aggregate (bit-identical on hit and miss).
    pub summary: ExecutiveSummary,
    /// The serializable report (spec embedded for provenance).
    pub report: ExecutiveMcReport,
    /// On a hit, the store entry the result was served from.
    pub source: Option<std::path::PathBuf>,
    /// Hit, miss, or refresh.
    pub cache: CacheOutcome,
}

/// Cache-or-compute for one executive spec (the `eacp executive --mc`
/// path).
///
/// The compute side matches the execution layer's dispatch exactly: an
/// `mc.queue` section picks the work-queue runner, otherwise the local
/// runner with `mc.threads` workers — a placement choice the canonical
/// reduction proves result-neutral, which is why it is not part of the
/// cell key.
pub fn run_executive_cached(
    spec: &ExecutiveSpec,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<CachedExecutive, SpecError> {
    let mc = spec.mc_or_default();
    match mc.queue {
        Some(q) => {
            q.validate()?;
            let runner = QueueRunner::new(q.workers).with_max_attempts(q.max_attempts);
            run_executive_cached_with(spec, &runner, store, mode, observer)
        }
        None => {
            run_executive_cached_with(spec, &LocalRunner::new(mc.threads), store, mode, observer)
        }
    }
}

/// [`run_executive_cached`] on an explicit [`Runner`] — the seam the
/// resumable executive sweep shares with the single-spec path.
pub fn run_executive_cached_with(
    spec: &ExecutiveSpec,
    runner: &dyn Runner,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<CachedExecutive, SpecError> {
    let id = CellId::for_executive(spec);
    if mode == CacheMode::ReadWrite {
        match store.get(&id)? {
            Lookup::Hit { entry, .. } => {
                observer.on_hit(&id);
                let summary = entry.as_executive()?.clone();
                let report = ExecutiveMcReport {
                    spec: spec.clone(),
                    policy_names: spec.policy.policy_names(spec.tasks.len()),
                    summary: summary.clone(),
                };
                return Ok(CachedExecutive {
                    id,
                    summary,
                    report,
                    source: entry.source,
                    cache: CacheOutcome::Hit,
                });
            }
            Lookup::Quarantined { detail } => observer.on_quarantine(&id, &detail),
            Lookup::Miss => {}
        }
        observer.on_miss(&id);
    }
    let job = ExecutiveJob::from_spec(spec)?;
    let summary = runner.run_executive(&job)?;
    store.put(&CellEntry::executive(spec, &summary))?;
    observer.on_record(&id);
    let report = ExecutiveMcReport {
        spec: spec.clone(),
        policy_names: job.policy_names(),
        summary: summary.clone(),
    };
    Ok(CachedExecutive {
        id,
        summary,
        report,
        source: None,
        cache: match mode {
            CacheMode::ReadWrite => CacheOutcome::Miss,
            CacheMode::Refresh => CacheOutcome::Refreshed,
        },
    })
}

/// The result of a cache-or-compute single execution.
#[derive(Debug, Clone)]
pub struct CachedSingle {
    /// The cell (always the `replications == 0` sentinel).
    pub id: CellId,
    /// The run's outcome (bit-identical on hit and miss).
    pub outcome: RunOutcome,
    /// On a hit, the store entry the result was served from.
    pub source: Option<std::path::PathBuf>,
    /// Hit, miss, or refresh.
    pub cache: CacheOutcome,
}

/// Cache-or-compute for one raw-seed execution (the `eacp run` path).
///
/// Single executions run one replication directly with `mc.seed` — a
/// different computation from a 1-replication Monte-Carlo cell, so they
/// are keyed with the `replications == 0` sentinel. Anomalous outcomes
/// (policy bugs) are returned but never recorded.
pub fn run_cached_single(
    spec: &ExperimentSpec,
    store: &dyn StoreBackend,
    mode: CacheMode,
    observer: &dyn StoreObserver,
) -> Result<CachedSingle, SpecError> {
    let id = CellId::for_single(spec);
    if mode == CacheMode::ReadWrite {
        match store.get(&id)? {
            Lookup::Hit { entry, .. } => {
                observer.on_hit(&id);
                return Ok(CachedSingle {
                    id,
                    outcome: entry.as_outcome()?.clone(),
                    source: entry.source,
                    cache: CacheOutcome::Hit,
                });
            }
            Lookup::Quarantined { detail } => observer.on_quarantine(&id, &detail),
            Lookup::Miss => {}
        }
        observer.on_miss(&id);
    }
    let outcome = run_single(spec)?;
    if outcome.anomaly.is_none() {
        store.put(&CellEntry::outcome(spec, &outcome))?;
        observer.on_record(&id);
    }
    Ok(CachedSingle {
        id,
        outcome,
        source: None,
        cache: match mode {
            CacheMode::ReadWrite => CacheOutcome::Miss,
            CacheMode::Refresh => CacheOutcome::Refreshed,
        },
    })
}

/// One raw-seed execution of a spec — the computation `eacp run` performs,
/// reproduced here so `verify_cell` can re-derive single-execution cells.
fn run_single(spec: &ExperimentSpec) -> Result<RunOutcome, SpecError> {
    let scenario = spec.scenario.build()?;
    let mut policy = spec.policy.build()?;
    let mut faults = spec.faults.build(spec.mc.seed)?;
    let options = spec.executor.build()?;
    Ok(eacp_sim::Executor::new(&scenario)
        .with_options(options)
        .run(&mut policy, &mut faults))
}

/// Recomputes one stored cell and fails unless the stored bytes equal the
/// recomputation's canonical bytes exactly.
///
/// The error names the entry's provenance path (filesystem backends), so a
/// mismatched artifact is identifiable without bisecting the store.
pub fn verify_cell(store: &dyn StoreBackend, id: &CellId) -> Result<(), SpecError> {
    let (entry, text) = match store.get(id)? {
        Lookup::Hit { entry, text } => (entry, text),
        Lookup::Miss => return Err(SpecError::invalid(format!("cell {id} is not in the store"))),
        Lookup::Quarantined { detail } => {
            return Err(SpecError::invalid(format!(
                "cell {id} failed integrity checks and was quarantined: {detail}"
            )))
        }
    };
    let recomputed = match &entry.payload {
        CellPayload::Outcome(_) => {
            let spec = entry.experiment_spec()?;
            CellEntry::outcome(&spec, &run_single(&spec)?)
        }
        CellPayload::Summary(_) => {
            let spec = entry.experiment_spec()?;
            let job = Job::from_spec(&spec)?;
            // Re-derive through the tier that recorded the cell: an
            // analytic cell must reproduce analytically (a Monte-Carlo
            // recomputation of the same aggregate can differ in the last
            // ulp of the merged accumulators).
            let summary = match entry.served {
                ServeTier::Analytic => eacp_exec::serve_closed_form(&job).ok_or_else(|| {
                    SpecError::invalid(format!(
                        "cell {id}: marked analytic but its spec is not \
                         replication-invariant — tampered entry"
                    ))
                })?,
                ServeTier::Mc => LocalRunner::new(0).run(&job)?,
            };
            CellEntry::summary_tiered(&spec, &summary, entry.served)
        }
        CellPayload::Executive(_) => {
            let spec = entry.executive_spec()?;
            let job = ExecutiveJob::from_spec(&spec)?;
            CellEntry::executive(&spec, &LocalRunner::new(0).run_executive(&job)?)
        }
    };
    if recomputed.canonical_text() != text {
        let origin = entry
            .source
            .as_ref()
            .map_or_else(|| "in-memory entry".to_owned(), |p| p.display().to_string());
        return Err(SpecError::invalid(format!(
            "cell {id} ({origin}): stored bytes differ from recomputation — \
             corrupt entry or non-reproducible result"
        )));
    }
    Ok(())
}

/// What [`verify_store`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Live entries in the store.
    pub entries: u64,
    /// Entries recomputed and byte-compared.
    pub checked: u64,
}

/// Recomputes a deterministic sample of the store's cells (`sample == 0`
/// means every cell) and fails on the first byte mismatch.
///
/// The sample is an even stride over the sorted cell ids — deterministic
/// by construction, so repeated verification of an unchanged store checks
/// the same cells.
pub fn verify_store(store: &dyn StoreBackend, sample: usize) -> Result<VerifyReport, SpecError> {
    let ids = store.list()?;
    let n = ids.len();
    let take = if sample == 0 { n } else { sample.min(n) };
    for k in 0..take {
        verify_cell(store, &ids[k * n / take])?;
    }
    Ok(VerifyReport {
        entries: n as u64,
        checked: take as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eacp_spec::{McSpec, ToJson};

    fn small_spec(seed: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_nominal();
        spec.mc = McSpec {
            replications: 60,
            seed,
            threads: 1,
        };
        spec
    }

    #[test]
    fn hit_is_byte_identical_to_recomputation() {
        let store = MemBackend::new();
        let counters = StoreCounters::new();
        let spec = small_spec(3);

        let miss = run_cached(&spec, &store, CacheMode::ReadWrite, &counters).unwrap();
        assert_eq!(miss.cache, CacheOutcome::Miss);
        let hit = run_cached(&spec, &store, CacheMode::ReadWrite, &counters).unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);

        let (direct_summary, direct_report) = eacp_exec::run(&spec).unwrap();
        assert_eq!(hit.summary, direct_summary, "hit must be bit-identical");
        assert_eq!(
            hit.report.to_json().pretty(),
            direct_report.to_json().pretty(),
            "hit report must serialize byte-identically"
        );
        assert_eq!((counters.hits(), counters.misses()), (1, 1));
        assert_eq!(counters.records(), 1);
    }

    #[test]
    fn refresh_recomputes_and_overwrites() {
        let store = MemBackend::new();
        let spec = small_spec(4);
        run_cached(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        let refreshed = run_cached(&spec, &store, CacheMode::Refresh, &NoopStoreObserver).unwrap();
        assert_eq!(refreshed.cache, CacheOutcome::Refreshed);
        // The overwrite is idempotent: the next lookup still hits.
        let hit = run_cached(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(hit.summary, refreshed.summary);
    }

    #[test]
    fn single_executions_cache_under_the_sentinel() {
        let store = MemBackend::new();
        let spec = small_spec(5);
        let miss =
            run_cached_single(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!(miss.id.replications, 0);
        let hit =
            run_cached_single(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(hit.outcome, miss.outcome, "hit must be bit-identical");
        // The sentinel cell never collides with a Monte-Carlo cell of the
        // same spec and seed.
        let mc = run_cached(&spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        assert_ne!(mc.id, hit.id);
        assert_eq!(store.health().unwrap().entries, 2);
    }

    #[test]
    fn verify_passes_on_intact_stores_and_names_tampered_cells() {
        let store = MemBackend::new();
        for seed in 0..3 {
            run_cached(
                &small_spec(seed),
                &store,
                CacheMode::ReadWrite,
                &NoopStoreObserver,
            )
            .unwrap();
        }
        run_cached_single(
            &small_spec(9),
            &store,
            CacheMode::ReadWrite,
            &NoopStoreObserver,
        )
        .unwrap();
        let report = verify_store(&store, 0).unwrap();
        assert_eq!(report.entries, 4);
        assert_eq!(report.checked, 4);
        // Sampling checks fewer cells but still passes deterministically.
        let report = verify_store(&store, 2).unwrap();
        assert_eq!(report.checked, 2);

        // Tamper with a payload value. The count is not covered by the
        // spec hash and stays internally consistent, so the entry passes
        // integrity checks — only the byte comparison against an actual
        // recomputation can catch it.
        let ids = store.list().unwrap();
        let Lookup::Hit { mut entry, .. } = store.get(&ids[0]).unwrap() else {
            panic!("expected hit");
        };
        match &mut entry.payload {
            CellPayload::Summary(s) => s.timely = s.timely.wrapping_sub(1),
            CellPayload::Outcome(o) => o.faults += 1,
            CellPayload::Executive(s) => s.jobs = s.jobs.wrapping_add(1),
        }
        store.put(&entry).unwrap();
        let err = verify_store(&store, 0).unwrap_err();
        assert!(err.to_string().contains("differ"), "{err}");
    }

    fn executive_spec(seed: u64) -> ExecutiveSpec {
        use eacp_spec::{ExecutiveMcSpec, FaultSpec, PolicyAssignment, PolicySpec, TaskSetSpec};
        let mut spec = ExecutiveSpec::new(
            "exec-store-test",
            TaskSetSpec::implicit([("sensor", 500.0, 4_000), ("control", 1_200.0, 8_000)]),
        );
        spec.faults = FaultSpec::Poisson { lambda: 8e-4 };
        spec.policy = PolicyAssignment::Shared(PolicySpec::from_tag("a_d_s", 8e-4, 2, 0).unwrap());
        spec.hyperperiods = 2;
        spec.seed = seed;
        spec.mc = Some(ExecutiveMcSpec {
            replications: 10,
            threads: 1,
            queue: None,
        });
        spec
    }

    #[test]
    fn executive_hit_is_byte_identical_and_verifies() {
        let store = MemBackend::new();
        let counters = StoreCounters::new();
        let spec = executive_spec(7);

        let miss = run_executive_cached(&spec, &store, CacheMode::ReadWrite, &counters).unwrap();
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!(miss.id.seed, 7);
        assert_eq!(miss.id.replications, 10);
        let hit = run_executive_cached(&spec, &store, CacheMode::ReadWrite, &counters).unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(hit.summary, miss.summary, "hit must be bit-identical");
        assert_eq!(
            hit.report.to_json().pretty(),
            miss.report.to_json().pretty(),
            "hit report must serialize byte-identically"
        );

        // The stored entry re-verifies: recomputation is byte-identical.
        verify_store(&store, 0).unwrap();

        // Tampering is caught by the byte comparison.
        let ids = store.list().unwrap();
        let Lookup::Hit { mut entry, .. } = store.get(&ids[0]).unwrap() else {
            panic!("expected hit");
        };
        match &mut entry.payload {
            CellPayload::Executive(s) => s.jobs = s.jobs.wrapping_add(1),
            _ => panic!("expected executive payload"),
        }
        store.put(&entry).unwrap();
        let err = verify_store(&store, 0).unwrap_err();
        assert!(err.to_string().contains("differ"), "{err}");
    }

    #[test]
    fn executive_cells_never_collide_with_single_task_cells() {
        let store = MemBackend::new();
        let exec_spec = executive_spec(3);
        let mc_spec = small_spec(3);
        let a = run_executive_cached(&exec_spec, &store, CacheMode::ReadWrite, &NoopStoreObserver)
            .unwrap();
        let b = run_cached(&mc_spec, &store, CacheMode::ReadWrite, &NoopStoreObserver).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(store.health().unwrap().entries, 2);
        // Asking an executive cell for a single-task summary is an error,
        // not a silent reinterpretation.
        let Lookup::Hit { entry, .. } = store.get(&a.id).unwrap() else {
            panic!("expected hit");
        };
        assert!(entry.as_summary().is_err());
        assert!(entry.as_executive().is_ok());
    }

    #[test]
    fn executive_hash_ignores_name_seed_and_scheduling() {
        let base = executive_spec(1);
        let mut renamed = base.clone();
        renamed.name = "something-else".into();
        let mut reseeded = base.clone();
        reseeded.seed = 99;
        let mut rescheduled = base.clone();
        rescheduled.mc = Some(eacp_spec::ExecutiveMcSpec {
            replications: 500,
            threads: 8,
            queue: Some(eacp_spec::QueueSpec {
                workers: 4,
                max_attempts: 2,
                ..Default::default()
            }),
        });
        for variant in [&renamed, &reseeded, &rescheduled] {
            assert_eq!(executive_spec_hash(&base), executive_spec_hash(variant));
        }
        let mut retasked = base.clone();
        retasked.hyperperiods = 5;
        assert_ne!(executive_spec_hash(&base), executive_spec_hash(&retasked));
    }

    #[test]
    fn missing_cells_are_verify_errors() {
        let store = MemBackend::new();
        let id = CellId::for_spec(&small_spec(1));
        let err = verify_cell(&store, &id).unwrap_err();
        assert!(err.to_string().contains("not in the store"), "{err}");
    }
}
