//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored shim provides exactly the subset of the `rand` 0.8 API the
//! workspace uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`Rng::gen`] for `f64`/`f32`/`u64`/`u32`/`bool`.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64
//! (the seeding scheme recommended by the xoshiro authors). It is *not* the
//! ChaCha12 stream of the real `rand::rngs::StdRng`; all experiments in this
//! workspace are statistical, so only determinism and statistical quality
//! matter, and both are preserved. Swapping the real crate back in requires
//! no source changes — only re-recording any golden numbers derived from a
//! fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
///
/// Stands in for `rand`'s `Standard` distribution: floats are uniform in
/// `[0, 1)`, integers uniform over their full range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, expanded through SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12) — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        // Non-generic and on every sample's hot path: without the inline
        // hint the xoshiro step would be an opaque cross-crate call in
        // every simulation loop.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
