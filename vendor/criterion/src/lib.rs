//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of the criterion API the workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `finish`), [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock mean over `sample_size` samples after
//! one warm-up sample — no outlier analysis, no HTML reports. It is enough
//! to compare relative costs from `cargo bench` output and to keep bench
//! code compiling and runnable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Wall-clock timing is this shim's whole purpose; the R1 determinism rule
// (see clippy.toml) targets the simulation crates, not the bench harness.
#![allow(clippy::disallowed_types)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (subset of criterion's).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration. This shim accepts and ignores
    /// benchmark filters and harness flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs accumulated reports (no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Times closures handed to `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, then a fixed small batch.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {id:<40} mean {mean:>12.3?} ({} iters)", b.iters);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u32;
        group.bench_function("f", |b| b.iter(|| hits += 1));
        group.finish();
        assert!(hits >= 2 * 3);
    }
}
