//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! numeric-range and tuple strategies, [`collection::vec`], `prop_map`, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the sampled inputs
//!   (every strategy value is `Debug`-printed in the panic message), but no
//!   minimal counterexample search happens.
//! * **Deterministic seeding** — cases are generated from a fixed seed mixed
//!   with the test name, so failures always reproduce.
//! * Default case count is 256, like real proptest.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

fn u64_below(rng: &mut TestRng, n: u64) -> u64 {
    // Multiply-shift bounded sampling; bias is < 2^-64, irrelevant here.
    ((rng.gen::<u64>() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.gen::<f64>() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{u64_below, Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `sizes` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + u64_below(rng, span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Test-runner internals (only what the macro needs).
pub mod test_runner {
    pub use crate::ProptestConfig as Config;

    use crate::TestRng;
    use rand::SeedableRng;

    /// Runs `body` for `cases` deterministic cases.
    pub fn run_cases(cases: u32, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        // FNV-1a over the test name: stable per-test seed across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        for case in 0..cases as u64 {
            let mut rng = TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            body(&mut rng);
        }
    }
}

/// Binds `name in strategy` argument lists inside [`proptest!`].
#[macro_export]
macro_rules! __prop_bind {
    ($rng:expr $(,)?) => {};
    ($rng:expr, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::sample(&($strat), $rng);
        $( $crate::__prop_bind!($rng, $($rest)*); )?
    };
    ($rng:expr, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
        $( $crate::__prop_bind!($rng, $($rest)*); )?
    };
}

/// Property-test entry macro (subset of real proptest's).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(config.cases, stringify!($name), |__rng| {
                    $crate::__prop_bind!(__rng, $($args)*);
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3u64..=7, mut v in crate::collection::vec(0u32..10, 1..5)) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..=7).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            v.push(0);
            prop_assert!(v.iter().all(|&e| e <= 10));
        }

        #[test]
        fn prop_map_applies(y in (0u64..5, 1u64..=1).prop_map(|(a, b)| a + b) ) {
            prop_assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut first = Vec::new();
        crate::test_runner::run_cases(5, "x", |rng| {
            first.push(crate::Strategy::sample(&(0u64..1000), rng))
        });
        let mut second = Vec::new();
        crate::test_runner::run_cases(5, "x", |rng| {
            second.push(crate::Strategy::sample(&(0u64..1000), rng))
        });
        assert_eq!(first, second);
    }
}
